/**
 * @file
 * Implementation of the LEO hierarchical Bayesian estimator.
 *
 * Two implementations of the EM loop live here:
 *
 *  - The *reference path* (LeoOptions::referencePath) is the
 *    straightforward transcription of Equations (3)-(4): allocating
 *    temporaries every iteration, naive Cholesky/inverse kernels. It
 *    is the executable specification of the fit.
 *  - The default *workspace path* acquires every loop buffer up
 *    front from a linalg::Workspace, factors and inverts in place
 *    with the blocked kernels, and exploits symmetry (lower-triangle
 *    inverse + symv). It produces bitwise-identical output — every
 *    kernel it substitutes preserves the reference's per-entry
 *    floating-point accumulation order — while performing zero heap
 *    allocations inside the iteration loop and roughly halving the
 *    per-iteration flops.
 *
 * The estimator tests assert exact equality between the two paths,
 * at several thread counts, warm and cold.
 */

#include "estimators/leo.hh"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <utility>

#include "estimators/normalization.hh"
#include "estimators/offline.hh"
#include "estimators/sanitize.hh"
#include "linalg/cholesky.hh"
#include "linalg/error.hh"
#include "linalg/lowrank.hh"
#include "obs/obs.hh"
#include "parallel/parallel_for.hh"
#include "stats/mvn.hh"

namespace leo::estimators
{

namespace
{

/**
 * Leaf-chunk grain for the per-application reductions: at most 8
 * leaves regardless of worker count, so the combine tree (and with
 * it every rounding decision) depends only on the number of prior
 * applications.
 */
std::size_t
emGrain(std::size_t m)
{
    return (m + 7) / 8;
}

/** Registered heap-allocation counter (test hook; see leo.hh). */
std::size_t (*alloc_counter)() = nullptr;

/** Registry instruments of the EM estimator (lazily registered). */
struct EmObs
{
    obs::Counter fits =
        obs::Registry::global().counter(obs::names::kEmFitsCompleted);
    obs::Counter warm =
        obs::Registry::global().counter(obs::names::kEmFitsWarm);
    obs::Counter iters =
        obs::Registry::global().counter(obs::names::kEmIterationsRun);
    obs::Counter ridge =
        obs::Registry::global().counter(obs::names::kEmRidgeRetried);
    obs::Histogram iter_ms = obs::Registry::global().histogram(
        obs::names::kEmIterMs, obs::defaultTimeBucketsMs());
    obs::Gauge ws_bytes =
        obs::Registry::global().gauge(obs::names::kEmWorkspaceBytes);
    obs::Counter lowrank =
        obs::Registry::global().counter(obs::names::kEmLowRankFits);
    obs::Gauge basis_cols =
        obs::Registry::global().gauge(obs::names::kEmBasisColumns);
};

EmObs &
emObs()
{
    static EmObs o;
    return o;
}

/**
 * The low-rank EM path (CovarianceRep::LowRank).
 *
 * Every vector the EM ever produces — shapes, mu, posterior means —
 * lives in the span of the M prior shapes plus the observed
 * coordinate directions, so the covariance is maintained factored as
 * Sigma = alpha I + Q' C Q with Q an orthonormal q x n basis of that
 * span (q = rank <= M + |Omega| << n). With beta = alpha + sigma^2
 * the Woodbury identity gives
 *
 *     (Sigma + sigma^2 I)^-1 = (1/beta) I + Q' E Q,
 *     E = (C + beta I)^-1 - (1/beta) I,
 *
 * and because every difference vector the E-step solves against is in
 * span(Q'), the n-dimensional solves collapse to q-dimensional ones:
 * the per-iteration cost is O(q^3 + m q^2 + s q^2) against the dense
 * path's O(n^3). The M-step closes over the representation — the
 * isotropic pieces (sigma^2-inflation of the posterior covariance and
 * the Psi = psi I prior) update alpha, everything else updates C — so
 * no re-densification ever happens. Full derivation: DESIGN.md
 * section 7.2.
 *
 * The result is tolerance-equivalent (not bitwise-equal) to the dense
 * path: the algebra is identical but evaluated in a rotated
 * parameterization, so roundings differ at the 1e-14 level per
 * operation. The equivalence suite (tests/lowrank_test.cc) pins the
 * agreement bounds.
 */
LeoFit
fitLowRank(const LeoOptions &opt,
           const std::vector<linalg::Vector> &shapes,
           const std::vector<std::size_t> &obs_idx,
           const linalg::Vector &x_obs, double scale,
           linalg::Workspace *ws, const LeoFit *warm,
           std::size_t (*counter)())
{
    using linalg::Matrix;
    using linalg::Vector;

    const std::size_t n = shapes.front().size();
    const std::size_t m_prior = shapes.size();
    const std::size_t s = obs_idx.size();
    const bool have_obs = s > 0;
    const double mp = static_cast<double>(m_prior);
    const double m_total = mp + (have_obs ? 1.0 : 0.0);

    linalg::Workspace local_ws;
    linalg::Workspace &arena = ws ? *ws : local_ws;

    // ---- Basis ----------------------------------------------------
    // Orthonormalize the prior shapes, then the observed coordinate
    // directions. Near-duplicates (rank-deficient priors, repeated
    // observation indices) are dropped by the basis, shrinking q.
    linalg::LowRankBasis basis;
    basis.reset(n, m_prior + s);
    for (const Vector &x : shapes)
        basis.appendVector(x);
    for (std::size_t j = 0; j < s; ++j)
        basis.appendUnit(obs_idx[j]);
    const std::size_t q = basis.size();
    require(q >= 1, "LeoEstimator: empty low-rank basis");

    Matrix &qmat = arena.matrix("lr.q", q, n);
    basis.rowsInto(qmat);

    // P (s x q): the basis columns at the observed indices, so row j
    // of P holds the coordinates of e_{obs_j} in the basis.
    Matrix &p = arena.matrix("lr.p", s, q);
    for (std::size_t j = 0; j < s; ++j)
        for (std::size_t k = 0; k < q; ++k)
            p.at(j, k) = basis.entry(k, obs_idx[j]);

    // Coordinates of the prior shapes: row i = Q x_i.
    Matrix &coords = arena.matrix("lr.coords", m_prior, q);
    {
        Vector ci(q);
        for (std::size_t i = 0; i < m_prior; ++i) {
            basis.coordsInto(ci, shapes[i]);
            for (std::size_t k = 0; k < q; ++k)
                coords.at(i, k) = ci[k];
        }
    }

    // ---- Initialization -------------------------------------------
    // A warm fit must itself be low-rank (no dense <-> low-rank warm
    // crossover: the representations converge to slightly different
    // bits and the mixed init would be neither).
    const bool warm_ok =
        warm != nullptr && warm->lowRank && warm->basisT.cols() == n &&
        warm->basisT.rows() >= 1 &&
        warm->coeff.rows() == warm->basisT.rows() &&
        warm->coeff.cols() == warm->basisT.rows() &&
        warm->mu.size() == n && warm->alphaDiag > 0.0 &&
        warm->sigma2 >= opt.minSigma2 && warm->mu.allFinite() &&
        warm->basisT.allFinite() && warm->coeff.allFinite();

    Vector g(q, 0.0);
    Matrix &cmat = arena.matrix("lr.c", q, q);
    cmat.resize(q, q);
    double alpha = 0.0;
    double sigma2 = opt.initSigma2;
    if (warm_ok) {
        // Re-express the warm theta in the fresh basis: g = Q mu_w,
        // C0 = R C_w R' with R = Q Q_w'. Old directions missing from
        // the new span project away; since EM re-estimates from the
        // init, the loss only perturbs the starting point.
        basis.coordsInto(g, warm->mu);
        Matrix &rmat = arena.matrix("lr.rot", q, warm->basisT.rows());
        Matrix &rc = arena.matrix("lr.rotc", q, warm->basisT.rows());
        linalg::abtInto(rmat, qmat, warm->basisT);
        Matrix::multiplyInto(rc, rmat, warm->coeff);
        linalg::abtInto(cmat, rc, rmat);
        alpha = warm->alphaDiag;
        sigma2 = warm->sigma2;
    } else {
        // Cold init, exactly the dense init in coordinates: the mean
        // of the shape coordinates is the coordinates of the mean
        // shape, the residual Gram matrix is the projected dense one,
        // and the isotropic Psi lands in alpha.
        if (opt.init == EmInit::Offline) {
            for (std::size_t i = 0; i < m_prior; ++i)
                for (std::size_t k = 0; k < q; ++k)
                    g[k] += coords.at(i, k);
            g /= mp;
        }
        Matrix &resid0 = arena.matrix("lr.resid", m_prior, q);
        for (std::size_t i = 0; i < m_prior; ++i)
            for (std::size_t k = 0; k < q; ++k)
                resid0.at(i, k) = coords.at(i, k) - g[k];
        Matrix::gramInto(cmat, resid0);
        cmat.outerAddInto(opt.hyperPi, g, g);
        cmat /= m_total + 1.0;
        alpha = opt.hyperPsiScale / (m_total + 1.0);
    }

    // ---- EM iterations --------------------------------------------
    LeoFit fit;
    fit.scale = scale;
    fit.warmStarted = warm_ok;
    fit.logLikelihoodTrace.reserve(opt.maxIterations);

    EmObs &eo = emObs();
    obs::Span fit_span(obs::names::kEmFitSpan, "em");
    fit_span.arg("apps", mp);
    fit_span.arg("configs", static_cast<double>(n));
    fit_span.arg("rank", static_cast<double>(q));

    // Loop buffers: everything is q- or s-dimensional, so the whole
    // working set is a few hundred kilobytes even at n = 16384.
    Matrix &invq = arena.matrix("lr.invq", q, q);
    Matrix &zc = arena.matrix("lr.zc", m_prior, q);
    Matrix &residm = arena.matrix("lr.residm", m_prior, q);
    Matrix &gramq = arena.matrix("lr.gram", q, q);
    Matrix &cnew = arena.matrix("lr.cnew", q, q);
    Matrix &pc = arena.matrix("lr.pc", s, q);
    Matrix &amat = arena.matrix("lr.amat", s, s);
    Matrix &bmat = arena.matrix("lr.bmat", s, q);
    Matrix &xmat = arena.matrix("lr.xmat", s, q);
    Matrix &ct = arena.matrix("lr.ct", q, q);
    Matrix &pct = arena.matrix("lr.pct", s, q);

    Vector gnew(q, 0.0);
    Vector tc(q, 0.0);
    Vector u(q, 0.0);
    Vector cu(q, 0.0);
    Vector dq(q, 0.0);
    Vector wq(q, 0.0);
    Vector dtc(q, 0.0);
    Vector ll_quad(m_prior, 0.0);
    Vector r(s, 0.0);
    Vector w(s, 0.0);
    Vector ptc(s, 0.0);
    Vector pg(s, 0.0);
    Vector prev_pred = g;

    linalg::Cholesky chol;
    chol.reserve(q);
    linalg::Cholesky::reserveInverseScratch(arena, q);
    linalg::Cholesky chol_obs;
    if (have_obs)
        chol_obs.reserve(s);

    const double total_obs = static_cast<double>(m_prior * n + s);
    const double log2pi = std::log(2.0 * std::numbers::pi);

    obs::Registry::global().prepareThread();
    eo.ws_bytes.set(static_cast<double>(arena.bytes()));

    // Same allocation contract as the dense workspace path: nothing
    // inside the loop touches the heap.
    // leo-lint: hot-begin
    const std::size_t alloc0 = counter ? counter() : 0;
    for (std::size_t iter = 0; iter < opt.maxIterations; ++iter) {
        obs::Span iter_span(obs::names::kEmIterSpan, "em");
        obs::ScopedMs iter_timer(eo.iter_ms);
        fit.iterations = iter + 1;

        const double beta = alpha + sigma2;

        // Factor (C + beta I): the q x q core of every Woodbury
        // identity this iteration needs.
        chol.factorize(cmat, beta, 1e-6);
        chol.inverseInto(invq, arena, /*mirror=*/false);
        double tr_invq = 0.0;
        for (std::size_t k = 0; k < q; ++k)
            tr_invq += invq.at(k, k);
        // tr((Sigma + sigma^2 I)^-1) = n/beta + tr(E).
        const double tr_ainv =
            static_cast<double>(n) / beta +
            (tr_invq - static_cast<double>(q) / beta);

        // E-step, fully observed applications, in coordinates:
        // (Sigma + sigma^2 I)^-1 (x_i - mu) = Q' (C + beta I)^-1 dq
        // because x_i - mu is in span(Q').
        double wq2_sum = 0.0;
        for (std::size_t i = 0; i < m_prior; ++i) {
            for (std::size_t k = 0; k < q; ++k)
                dq[k] = coords.at(i, k) - g[k];
            wq = dq;
            chol.solveInPlace(wq);
            ll_quad[i] = linalg::dot(dq, wq);
            wq2_sum += wq.squaredNorm();
            for (std::size_t k = 0; k < q; ++k)
                zc.at(i, k) = coords.at(i, k) - sigma2 * wq[k];
        }

        // E-step, target application: condition on the observations
        // entirely in the small dimensions. A = Sigma_Omega +
        // sigma^2 I = beta I_s + P C P'; the posterior mean is
        // tc = g + (alpha I + C) P' A^-1 r, and the posterior core is
        // Ct = C - B' A^-1 B with B = alpha P + P C.
        if (have_obs) {
            Matrix::multiplyInto(pc, p, cmat);
            linalg::abtInto(amat, pc, p);
            amat.addToDiagonal(beta);
            // Duplicate observation indices couple through the
            // alpha I part of Sigma off the diagonal too:
            // Sigma_Omega[j][j2] includes alpha whenever the two
            // rows observe the same configuration.
            for (std::size_t j = 0; j < s; ++j)
                for (std::size_t j2 = j + 1; j2 < s; ++j2)
                    if (obs_idx[j] == obs_idx[j2]) {
                        amat.at(j, j2) += alpha;
                        amat.at(j2, j) += alpha;
                    }
            chol_obs.factorize(amat, 0.0, 1e-8);
            linalg::gemvInto(pg, p, g);
            for (std::size_t j = 0; j < s; ++j)
                r[j] = x_obs[j] - pg[j];
            w = r;
            chol_obs.solveInPlace(w);
            linalg::gemvTransInto(u, p, w);
            linalg::gemvInto(cu, cmat, u);
            for (std::size_t k = 0; k < q; ++k)
                tc[k] = g[k] + alpha * u[k] + cu[k];
            for (std::size_t j = 0; j < s; ++j)
                for (std::size_t k = 0; k < q; ++k)
                    bmat.at(j, k) =
                        alpha * p.at(j, k) + pc.at(j, k);
            xmat = bmat;
            chol_obs.solveInPlace(xmat);
            linalg::atbInto(ct, bmat, xmat);
            for (std::size_t k = 0; k < q; ++k)
                for (std::size_t k2 = 0; k2 < q; ++k2)
                    ct.at(k, k2) = cmat.at(k, k2) - ct.at(k, k2);
        }

        // Marginal log-likelihood under the current theta;
        // logdet(Sigma + sigma^2 I) = (n - q) log beta +
        // logdet(C + beta I).
        {
            const double logdet_full =
                static_cast<double>(n - q) * std::log(beta) +
                chol.logDet();
            double ll =
                -0.5 * mp *
                (static_cast<double>(n) * log2pi + logdet_full);
            for (std::size_t i = 0; i < m_prior; ++i)
                ll -= 0.5 * ll_quad[i];
            if (have_obs)
                ll -= 0.5 * (static_cast<double>(s) * log2pi +
                             chol_obs.logDet() + linalg::dot(r, w));
            fit.logLikelihoodTrace.push_back(ll);
            iter_span.arg("iter", static_cast<double>(iter + 1));
            if (iter > 0) {
                const auto &t = fit.logLikelihoodTrace;
                iter_span.arg("ll_delta",
                              t[t.size() - 1] - t[t.size() - 2]);
            }
        }

        // M-step: mu (Equation 4, mu_0 = 0), in coordinates.
        gnew.fill(0.0);
        for (std::size_t i = 0; i < m_prior; ++i)
            for (std::size_t k = 0; k < q; ++k)
                gnew[k] += zc.at(i, k);
        if (have_obs)
            gnew += tc;
        gnew /= m_total + opt.hyperPi;

        // M-step: Sigma (Equation 4). The posterior covariance of a
        // fully observed app is C_full = sigma^2 I - sigma^4
        // (Sigma + sigma^2 I)^-1, whose isotropic part
        // sigma^2 (1 - sigma^2 / beta) I feeds alpha and whose span
        // part -sigma^4 E feeds C; the target's posterior covariance
        // splits as alpha I + Q' Ct Q; Psi = psi I is isotropic.
        const double alpha_new =
            (mp * sigma2 * (1.0 - sigma2 / beta) +
             (have_obs ? alpha : 0.0) + opt.hyperPsiScale) /
            (m_total + 1.0);
        cnew.fill(0.0);
        // -m sigma^4 E = -m sigma^4 (C + beta I)^-1
        //                + (m sigma^4 / beta) I.
        cnew.addScaledSymmetric(-mp * sigma2 * sigma2, invq);
        cnew.addToDiagonal(mp * sigma2 * sigma2 / beta);
        if (have_obs)
            cnew += ct;
        for (std::size_t i = 0; i < m_prior; ++i)
            for (std::size_t k = 0; k < q; ++k)
                residm.at(i, k) = zc.at(i, k) - gnew[k];
        Matrix::gramInto(gramq, residm);
        cnew += gramq;
        if (have_obs) {
            for (std::size_t k = 0; k < q; ++k)
                dtc[k] = tc[k] - gnew[k];
            cnew.outerAddInto(1.0, dtc, dtc);
        }
        cnew.outerAddInto(opt.hyperPi, gnew, gnew);
        cnew /= m_total + 1.0;
        cnew.symmetrize();

        // M-step: sigma^2 (Equation 4). tr(C_full) per app is
        // n sigma^2 - sigma^4 tr_ainv; the residual z_i - x_i is
        // -sigma^2 Q' wq_i so its squared norm is sigma^4 |wq_i|^2.
        double noise_accum =
            mp * (static_cast<double>(n) * sigma2 -
                  sigma2 * sigma2 * tr_ainv) +
            sigma2 * sigma2 * wq2_sum;
        if (have_obs) {
            Matrix::multiplyInto(pct, p, ct);
            linalg::gemvInto(ptc, p, tc);
            for (std::size_t j = 0; j < s; ++j) {
                double tjj = alpha;
                for (std::size_t k = 0; k < q; ++k)
                    tjj += pct.at(j, k) * p.at(j, k);
                const double rr = ptc[j] - x_obs[j];
                noise_accum += tjj + rr * rr;
            }
        }
        const double sigma2_new =
            std::max(noise_accum / total_obs, opt.minSigma2);

        // Convergence on the target prediction, as in the dense
        // paths; coordinate norms equal ambient norms because Q has
        // orthonormal rows.
        const Vector &pred = have_obs ? tc : gnew;
        double dd = 0.0;
        for (std::size_t k = 0; k < q; ++k) {
            const double t = pred[k] - prev_pred[k];
            dd += t * t;
        }
        const double dpred =
            std::sqrt(dd) / (prev_pred.norm() + 1e-12);
        prev_pred = pred;

        std::swap(g, gnew);
        std::swap(cmat, cnew);
        alpha = alpha_new;
        sigma2 = sigma2_new;

        if (dpred < opt.tolerance) {
            fit.converged = true;
            break;
        }
    }
    if (counter)
        fit.loopAllocations = counter() - alloc0;
    // leo-lint: hot-end

    eo.fits.add(1);
    eo.lowrank.add(1);
    if (warm_ok)
        eo.warm.add(1);
    eo.iters.add(fit.iterations);
    eo.basis_cols.set(static_cast<double>(q));
    fit_span.arg("iters", static_cast<double>(fit.iterations));
    fit_span.arg("converged", fit.converged ? 1.0 : 0.0);

    // ---- Prediction -----------------------------------------------
    // Final E-step for the target under the fitted theta, then expand
    // back to configuration space.
    if (have_obs) {
        const double beta = alpha + sigma2;
        Matrix::multiplyInto(pc, p, cmat);
        linalg::abtInto(amat, pc, p);
        amat.addToDiagonal(beta);
        for (std::size_t j = 0; j < s; ++j)
            for (std::size_t j2 = j + 1; j2 < s; ++j2)
                if (obs_idx[j] == obs_idx[j2]) {
                    amat.at(j, j2) += alpha;
                    amat.at(j2, j) += alpha;
                }
        chol_obs.factorize(amat, 0.0, 1e-8);
        linalg::gemvInto(pg, p, g);
        for (std::size_t j = 0; j < s; ++j)
            r[j] = x_obs[j] - pg[j];
        w = r;
        chol_obs.solveInPlace(w);
        linalg::gemvTransInto(u, p, w);
        linalg::gemvInto(cu, cmat, u);
        for (std::size_t k = 0; k < q; ++k)
            tc[k] = g[k] + alpha * u[k] + cu[k];
        for (std::size_t j = 0; j < s; ++j)
            for (std::size_t k = 0; k < q; ++k)
                bmat.at(j, k) = alpha * p.at(j, k) + pc.at(j, k);
        xmat = bmat;
        chol_obs.solveInPlace(xmat);
        linalg::atbInto(ct, bmat, xmat);
        for (std::size_t k = 0; k < q; ++k)
            for (std::size_t k2 = 0; k2 < q; ++k2)
                ct.at(k, k2) = cmat.at(k, k2) - ct.at(k, k2);
    } else {
        tc = g;
        ct = cmat;
    }

    Vector pred_full(n);
    basis.expandInto(pred_full, tc);
    fit.prediction = Vector(n);
    for (std::size_t j = 0; j < n; ++j)
        fit.prediction[j] = std::max(pred_full[j] * scale, 0.0);

    // Posterior diagonal: cov_jj = alpha + q_j' Ct q_j, streamed as
    // rows of Ct Q against rows of Q. Callers that only query a few
    // configurations (opt.expandVariance == false) skip the O(n q)
    // expansion and evaluate entries on demand from varCore via
    // lowRankPredictiveVariance().
    if (opt.expandVariance) {
        Matrix &predt = arena.matrix("lr.predt", q, n);
        Matrix::multiplyInto(predt, ct, qmat);
        Vector cov_diag(n, 0.0);
        for (std::size_t k = 0; k < q; ++k) {
            const double *qk = qmat.data() + k * n;
            const double *tk = predt.data() + k * n;
            for (std::size_t j = 0; j < n; ++j)
                cov_diag[j] += qk[j] * tk[j];
        }
        fit.predictionVariance = Vector(n);
        for (std::size_t j = 0; j < n; ++j)
            fit.predictionVariance[j] =
                (alpha + cov_diag[j] + sigma2) * scale * scale;
    }
    basis.expandInto(fit.mu, g);
    // fit.sigma stays empty: at large n the dense matrix is exactly
    // what this path exists to avoid materializing.
    fit.sigma2 = sigma2;
    fit.lowRank = true;
    fit.basisT = qmat;
    fit.coeff = cmat;
    fit.alphaDiag = alpha;
    fit.varCore = ct;
    return fit;
}

} // namespace

double
lowRankPredictiveVariance(const LeoFit &fit, std::size_t c)
{
    const std::size_t q = fit.basisT.rows();
    require(fit.lowRank, "lowRankPredictiveVariance on a dense fit");
    require(fit.varCore.rows() == q && fit.varCore.cols() == q,
            "lowRankPredictiveVariance: missing varCore");
    require(c < fit.basisT.cols(),
            "lowRankPredictiveVariance: index out of range");
    // Same increasing-index accumulation as the expanded path: the
    // inner dot is one entry of Ct Q (multiplyInto accumulates each
    // entry in increasing k), the outer dot mirrors the streamed
    // cov_diag loop, so the result equals fit.predictionVariance[c]
    // bit for bit.
    const std::size_t n = fit.basisT.cols();
    const double *b = fit.basisT.data();
    double cov = 0.0;
    for (std::size_t k = 0; k < q; ++k) {
        const double *ctk = fit.varCore.data() + k * q;
        double t = 0.0;
        for (std::size_t k2 = 0; k2 < q; ++k2)
            t += ctk[k2] * b[k2 * n + c];
        cov += b[k * n + c] * t;
    }
    return (fit.alphaDiag + cov + fit.sigma2) * fit.scale *
           fit.scale;
}

double
LeoFit::predictiveVarianceAt(std::size_t c) const
{
    if (!predictionVariance.empty()) {
        require(c < predictionVariance.size(),
                "predictiveVarianceAt: index out of range");
        return predictionVariance[c];
    }
    require(lowRank,
            "predictiveVarianceAt: fit carries no variance (dense "
            "fit without expanded predictionVariance)");
    return lowRankPredictiveVariance(*this, c);
}

void
setAllocationCounter(std::size_t (*counter)())
{
    alloc_counter = counter;
}

LeoEstimator::LeoEstimator(LeoOptions options) : options_(options)
{
    require(options_.hyperPi >= 0.0, "LeoEstimator: pi must be >= 0");
    require(options_.hyperPsiScale >= 0.0,
            "LeoEstimator: psi must be >= 0");
    require(options_.maxIterations >= 1,
            "LeoEstimator: need >= 1 EM iteration");
    require(options_.initSigma2 > 0.0,
            "LeoEstimator: initial sigma^2 must be > 0");
    if (options_.threads > 1)
        pool_ = std::make_unique<parallel::ThreadPool>(
            options_.threads - 1);
}

parallel::ThreadPool &
LeoEstimator::pool() const
{
    if (pool_)
        return *pool_;
    return options_.threads == 1 ? parallel::ThreadPool::serial()
                                 : parallel::ThreadPool::global();
}

MetricEstimate
LeoEstimator::estimateMetric(const platform::ConfigSpace &space,
                             const std::vector<linalg::Vector> &prior,
                             const std::vector<std::size_t> &obs_idx,
                             const linalg::Vector &obs_vals) const
{
    return estimateMetric(space, prior, obs_idx, obs_vals, nullptr,
                          nullptr, nullptr);
}

MetricEstimate
LeoEstimator::estimateMetric(const platform::ConfigSpace &space,
                             const std::vector<linalg::Vector> &prior,
                             const std::vector<std::size_t> &obs_idx,
                             const linalg::Vector &obs_vals,
                             linalg::Workspace *ws, const LeoFit *warm,
                             LeoFit *fit_out) const
{
    return estimateMetric(space, prior, obs_idx, obs_vals, ws, warm,
                          fit_out, options_.representation);
}

MetricEstimate
LeoEstimator::estimateMetric(const platform::ConfigSpace &space,
                             const std::vector<linalg::Vector> &prior,
                             const std::vector<std::size_t> &obs_idx,
                             const linalg::Vector &obs_vals,
                             linalg::Workspace *ws, const LeoFit *warm,
                             LeoFit *fit_out, CovarianceRep rep) const
{
    MetricEstimate est;
    if (prior.empty()) {
        // No offline knowledge at all: degenerate to a flat guess at
        // the observed mean (flagged unreliable).
        double flat = 0.0;
        for (double v : obs_vals)
            if (std::isfinite(v) && v > 0.0)
                flat = std::max(flat, v);
        est.values = linalg::Vector(space.size(), flat);
        est.reliable = false;
        return est;
    }
    require(prior.front().size() == space.size(),
            "LeoEstimator: prior/space size mismatch");

    // Sanitize the online observations so a faulted reading degrades
    // the fit instead of crashing it (clean sets pass through with
    // zero copies, keeping the fault-free path bitwise identical).
    const SanitizedObservations clean =
        sanitizeObservations(obs_idx, obs_vals, space.size());
    const std::vector<std::size_t> &idx =
        clean.modified ? clean.indices : obs_idx;
    const linalg::Vector &vals = clean.modified ? clean.values : obs_vals;
    est.samplesRejected = clean.rejected;

    try {
        LeoFit fit = fitMetric(prior, idx, vals, ws, warm, rep);
        if (fit.prediction.allFinite()) {
            est.iterations = fit.iterations;
            // Unreliable only when observations existed but none
            // survived sanitization: the fit is then the bare prior
            // shape with no anchoring to the target.
            est.reliable = obs_idx.empty() || !idx.empty();
            if (fit_out) {
                *fit_out = std::move(fit);
                est.values = fit_out->prediction;
            } else {
                est.values = std::move(fit.prediction);
            }
            return est;
        }
    } catch (const Error &) {
        // Fall through to the ridge retry.
    }

    // The EM fit failed (singular covariance even after the Cholesky
    // jitter schedule) or went non-finite. Retry cold with a heavy
    // NIW ridge — a deliberately over-regularized fit that trades
    // statistical efficiency for existence (DESIGN.md "Failure model
    // and degradation policy").
    emObs().ridge.add(1);
    try {
        LeoOptions ridge = options_;
        ridge.hyperPsiScale =
            std::max(options_.hyperPsiScale * 100.0, 1.0);
        ridge.initSigma2 = std::max(options_.initSigma2, 1e-2);
        ridge.threads = 1;
        ridge.representation = rep;
        const LeoEstimator heavy(ridge);
        LeoFit fit = heavy.fitMetric(prior, idx, vals, nullptr, nullptr);
        if (fit.prediction.allFinite()) {
            est.iterations = fit.iterations;
            est.reliable = false;
            if (fit_out) {
                *fit_out = std::move(fit);
                est.values = fit_out->prediction;
            } else {
                est.values = std::move(fit.prediction);
            }
            return est;
        }
    } catch (const Error &) {
        // Fall through to the prior-mean fallback.
    }

    // Last resort: the prior mean shape, anchored to the observed
    // scale when any observation survived. Always finite; never
    // updates fit_out (the caller's warm state stays intact).
    try {
        linalg::Vector shape = OfflineEstimator::meanShape(prior);
        if (!idx.empty()) {
            const double at_obs = shape.gather(idx).mean();
            if (at_obs > 0.0)
                shape *= vals.mean() / at_obs;
        }
        est.values = std::move(shape);
    } catch (const Error &) {
        est.values = linalg::Vector(space.size(),
                                    idx.empty() ? 0.0 : vals.mean());
    }
    est.reliable = false;
    return est;
}

LeoFit
LeoEstimator::fitMetric(const std::vector<linalg::Vector> &prior,
                        const std::vector<std::size_t> &obs_idx,
                        const linalg::Vector &obs_vals) const
{
    return fitMetric(prior, obs_idx, obs_vals, nullptr, nullptr);
}

LeoFit
LeoEstimator::fitMetric(const std::vector<linalg::Vector> &prior,
                        const std::vector<std::size_t> &obs_idx,
                        const linalg::Vector &obs_vals,
                        linalg::Workspace *ws, const LeoFit *warm) const
{
    return fitMetric(prior, obs_idx, obs_vals, ws, warm,
                     options_.representation);
}

LeoFit
LeoEstimator::fitMetric(const std::vector<linalg::Vector> &prior,
                        const std::vector<std::size_t> &obs_idx,
                        const linalg::Vector &obs_vals,
                        linalg::Workspace *ws, const LeoFit *warm,
                        CovarianceRep rep) const
{
    require(!prior.empty(), "LeoEstimator: no prior applications");
    require(obs_idx.size() == obs_vals.size(),
            "LeoEstimator: observation index/value mismatch");
    const std::size_t n = prior.front().size();
    for (const linalg::Vector &y : prior)
        require(y.size() == n, "LeoEstimator: ragged prior vectors");
    for (std::size_t idx : obs_idx)
        require(idx < n, "LeoEstimator: observation index out of range");

    // ---- Normalization --------------------------------------------
    // Estimation happens on unit-mean shapes (see normalization.hh).
    const std::vector<linalg::Vector> shapes = normalizeShapes(prior);
    const std::size_t m_prior = shapes.size();
    const std::size_t s = obs_idx.size();
    const bool have_obs = s > 0;
    const double scale = have_obs ? observedScale(obs_vals) : 1.0;
    linalg::Vector x_obs(s);
    for (std::size_t j = 0; j < s; ++j)
        x_obs[j] = obs_vals[j] / scale;

    // Total applications M: priors plus (when observed) the target.
    const double m_total =
        static_cast<double>(m_prior) + (have_obs ? 1.0 : 0.0);

    // ---- Representation dispatch ----------------------------------
    // The reference path is by definition dense (it is the executable
    // specification the other paths are judged against); Auto opts
    // into the factored path only when the rank bound leaves enough
    // headroom for the subspace algebra to win.
    const bool low_rank =
        !options_.referencePath &&
        (rep == CovarianceRep::LowRank ||
         (rep == CovarianceRep::Auto &&
          4 * (m_prior + s + 1) <= n));
    if (low_rank)
        return fitLowRank(options_, shapes, obs_idx, x_obs, scale, ws,
                          warm, alloc_counter);

    // ---- Initialization -------------------------------------------
    // Warm start (when a compatible previous fit is supplied) resumes
    // EM from its theta; since warm and cold fits share the loop
    // below, identical theta-zero implies identical output bits.
    const bool warm_ok =
        warm != nullptr && warm->mu.size() == n &&
        warm->sigma.rows() == n && warm->sigma.cols() == n &&
        warm->sigma2 >= options_.minSigma2 && warm->mu.allFinite() &&
        warm->sigma.allFinite();

    linalg::Vector mu(n, 0.0);
    linalg::Matrix sigma_m;
    double sigma2 = options_.initSigma2;
    if (warm_ok) {
        mu = warm->mu;
        sigma_m = warm->sigma;
        sigma2 = warm->sigma2;
    } else {
        // Cold init (Section 5.5: offline init helps).
        if (options_.init == EmInit::Offline) {
            for (const linalg::Vector &x : shapes)
                mu += x;
            mu /= static_cast<double>(m_prior);
        }
        // Residual matrix with rows x_i - mu: sum_i outer(x_i - mu)
        // is its Gram matrix, computed with the blocked kernel.
        linalg::Matrix resid(m_prior, n);
        for (std::size_t i = 0; i < m_prior; ++i)
            for (std::size_t j = 0; j < n; ++j)
                resid.at(i, j) = shapes[i][j] - mu[j];
        sigma_m = linalg::Matrix::gram(resid);
        sigma_m += options_.hyperPi * linalg::Matrix::outer(mu, mu);
        sigma_m.addToDiagonal(options_.hyperPsiScale);
        sigma_m /= m_total + 1.0;
    }

    // ---- EM iterations --------------------------------------------
    parallel::ThreadPool &workers = pool();
    LeoFit fit;
    fit.scale = scale;
    fit.warmStarted = warm_ok;
    fit.logLikelihoodTrace.reserve(options_.maxIterations);
    stats::GaussianPosterior target_post;
    target_post.mean = mu;
    linalg::Vector prev_pred = mu;

    const double total_obs =
        static_cast<double>(m_prior * n + s); // ||L||_F^2

    const auto counter = alloc_counter;

    if (options_.referencePath) {
        const std::size_t alloc0 = counter ? counter() : 0;
        for (std::size_t iter = 0; iter < options_.maxIterations;
             ++iter) {
            fit.iterations = iter + 1;

            // E-step, fully-observed applications (shared algebra):
            //   C_full = sigma^2 I - sigma^4 (Sigma + sigma^2 I)^-1
            //   z_i    = x_i - sigma^2 (Sigma + sigma^2 I)^-1
            //            (x_i - mu)
            linalg::Matrix a = sigma_m;
            a.addToDiagonal(sigma2);
            const linalg::Cholesky chol(a, 1e-6);
            const linalg::Matrix inv = chol.inverse();

            // Fan the per-application E-step across the pool: the
            // shared matrix-vector product inv * (x_i - mu) yields
            // both the posterior mean z_i and the app's
            // log-likelihood quadratic term. Each iteration writes
            // disjoint slots; every reduction below folds in a fixed
            // order, so the fit is bitwise identical at any thread
            // count.
            std::vector<linalg::Vector> z(m_prior);
            linalg::Vector ll_quad(m_prior);
            parallel::parallelFor(
                workers, m_prior, [&](std::size_t i) {
                    const linalg::Vector d = shapes[i] - mu;
                    const linalg::Vector w = inv * d;
                    ll_quad[i] = linalg::dot(d, w);
                    z[i] = shapes[i] - sigma2 * w;
                });

            // Marginal log-likelihood of everything observed under
            // the current theta: fully observed apps are N(mu, Sigma
            // + sigma^2 I); the target contributes its Omega
            // marginal.
            {
                const double log2pi =
                    std::log(2.0 * std::numbers::pi);
                double ll = -0.5 * static_cast<double>(m_prior) *
                            (static_cast<double>(n) * log2pi +
                             chol.logDet());
                for (std::size_t i = 0; i < m_prior; ++i)
                    ll -= 0.5 * ll_quad[i];
                if (have_obs) {
                    linalg::Matrix a_obs = sigma_m.gather(obs_idx);
                    a_obs.addToDiagonal(sigma2);
                    const linalg::Cholesky chol_obs(a_obs, 1e-8);
                    linalg::Vector d(s);
                    for (std::size_t j = 0; j < s; ++j)
                        d[j] = x_obs[j] - mu[obs_idx[j]];
                    const linalg::Vector w = chol_obs.solveLower(d);
                    ll -= 0.5 * (static_cast<double>(s) * log2pi +
                                 chol_obs.logDet() + w.squaredNorm());
                }
                fit.logLikelihoodTrace.push_back(ll);
            }

            // E-step, target application (sparse observations):
            if (have_obs) {
                target_post = stats::conditionOnObservations(
                    mu, sigma_m, obs_idx, x_obs, sigma2, true);
            }

            // M-step: mu (Equation 4, mu_0 = 0).
            linalg::Vector mu_new(n, 0.0);
            for (const linalg::Vector &zi : z)
                mu_new += zi;
            if (have_obs)
                mu_new += target_post.mean;
            mu_new /= m_total + options_.hyperPi;

            // M-step: Sigma (Equation 4; Psi and pi mu mu'
            // normalized inside the bracket per Yu et al. '05 — see
            // DESIGN.md).
            linalg::Matrix s_accum(n, n, 0.0);
            // sum_i C_i for the fully observed apps is m_prior *
            // C_full; C_full = sigma^2 I - sigma^4 inv.
            s_accum += (-sigma2 * sigma2 *
                        static_cast<double>(m_prior)) * inv;
            s_accum.addToDiagonal(sigma2 *
                                  static_cast<double>(m_prior));
            if (have_obs)
                s_accum += target_post.cov;
            // sum_i (z_i - mu)(z_i - mu)': per-chunk Gram partials
            // folded along the fixed combine tree — the chunk layout
            // depends only on m_prior, never on the worker count.
            s_accum += parallel::parallelReduce<linalg::Matrix>(
                workers, m_prior, emGrain(m_prior),
                [&](std::size_t b, std::size_t e) {
                    linalg::Matrix r(e - b, n);
                    for (std::size_t i = b; i < e; ++i)
                        for (std::size_t j = 0; j < n; ++j)
                            r.at(i - b, j) = z[i][j] - mu_new[j];
                    return linalg::Matrix::gram(r);
                },
                [](linalg::Matrix &into, linalg::Matrix &&from) {
                    into += from;
                });
            if (have_obs) {
                const linalg::Vector d = target_post.mean - mu_new;
                s_accum += linalg::Matrix::outer(d, d);
            }
            s_accum += options_.hyperPi *
                       linalg::Matrix::outer(mu_new, mu_new);
            s_accum.addToDiagonal(options_.hyperPsiScale);
            s_accum /= m_total + 1.0;
            s_accum.symmetrize();

            // M-step: sigma^2 (Equation 4).
            double noise_accum = 0.0;
            // Fully observed apps: every configuration contributes.
            for (std::size_t i = 0; i < m_prior; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    const double cjj =
                        sigma2 - sigma2 * sigma2 * inv.at(j, j);
                    const double r = z[i][j] - shapes[i][j];
                    noise_accum += cjj + r * r;
                }
            }
            // Target: only the observed configurations contribute.
            if (have_obs) {
                for (std::size_t j = 0; j < s; ++j) {
                    const std::size_t idx = obs_idx[j];
                    const double r =
                        target_post.mean[idx] - x_obs[j];
                    noise_accum +=
                        target_post.cov.at(idx, idx) + r * r;
                }
            }
            double sigma2_new = std::max(noise_accum / total_obs,
                                         options_.minSigma2);

            // Convergence is judged on what the algorithm is for:
            // the target prediction ("3-4 iterations to reach the
            // desired accuracy", Section 5.5). Raw parameters —
            // sigma^2 in particular — keep drifting geometrically
            // long after the prediction has stabilized.
            const linalg::Vector &pred =
                have_obs ? target_post.mean : mu_new;
            const double dpred = (pred - prev_pred).norm() /
                                 (prev_pred.norm() + 1e-12);
            prev_pred = pred;

            mu = std::move(mu_new);
            sigma_m = std::move(s_accum);
            sigma2 = sigma2_new;

            if (dpred < options_.tolerance) {
                fit.converged = true;
                break;
            }
        }
        if (counter)
            fit.loopAllocations = counter() - alloc0;

        // ---- Prediction -------------------------------------------
        // Final E-step for the target under the fitted parameters;
        // the prediction is E[z_M | theta-hat] rescaled to raw units.
        if (have_obs) {
            target_post = stats::conditionOnObservations(
                mu, sigma_m, obs_idx, x_obs, sigma2, true);
        } else {
            target_post.mean = mu;
            target_post.cov = sigma_m;
        }

        fit.prediction = linalg::Vector(n);
        fit.predictionVariance = linalg::Vector(n);
        for (std::size_t j = 0; j < n; ++j) {
            fit.prediction[j] =
                std::max(target_post.mean[j] * scale, 0.0);
            fit.predictionVariance[j] =
                (target_post.cov.at(j, j) + sigma2) * scale * scale;
        }
        fit.mu = std::move(mu);
        fit.sigma = std::move(sigma_m);
        fit.sigma2 = sigma2;
        return fit;
    }

    // ---- Workspace path -------------------------------------------
    // Acquire every buffer the loop touches up front; from here to
    // the end of the loop the only heap traffic is inside
    // ThreadPool::post when fanning to workers (serial fits are
    // strictly allocation-free, which the estimator tests assert).
    // Observability: the reference path above stays uninstrumented —
    // it is the executable specification the 0-ULP obs test compares
    // this instrumented path against.
    EmObs &eo = emObs();
    obs::Span fit_span(obs::names::kEmFitSpan, "em");
    fit_span.arg("apps", static_cast<double>(m_prior));
    fit_span.arg("configs", static_cast<double>(n));
    linalg::Workspace local_ws;
    linalg::Workspace &arena = ws ? *ws : local_ws;

    linalg::Matrix &inv = arena.matrix("em.inv", n, n);
    linalg::Matrix &a_obs = arena.matrix("em.aobs", s, s);
    linalg::Vector &d_obs = arena.vector("em.dobs", s);
    std::vector<linalg::Vector> &z =
        arena.vectorArray("em.z", m_prior, n);
    std::vector<linalg::Vector> &dscr =
        arena.vectorArray("em.d", m_prior, n);
    linalg::Vector &ll_quad = arena.vector("em.llquad", m_prior);
    linalg::Vector &mu_new = arena.vector("em.munew", n);
    linalg::Matrix &s_accum = arena.matrix("em.saccum", n, n);
    linalg::Vector &d_target = arena.vector("em.dtarget", n);

    const std::size_t grain = emGrain(m_prior);
    const std::size_t chunks = parallel::chunkCount(m_prior, grain);
    std::vector<linalg::Matrix *> gram_parts(chunks);
    std::vector<linalg::Matrix *> resid_parts(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t b = c * grain;
        const std::size_t e = std::min(m_prior, b + grain);
        resid_parts[c] =
            &arena.matrix("em.resid." + std::to_string(c), e - b, n);
        gram_parts[c] =
            &arena.matrix("em.gram." + std::to_string(c), n, n);
    }

    linalg::Cholesky chol;
    chol.reserve(n);
    linalg::Cholesky::reserveInverseScratch(arena, n);
    linalg::Cholesky chol_obs;
    stats::ConditioningScratch cond;
    if (have_obs) {
        chol_obs.reserve(s);
        cond.reserve(n, s);
    }
    target_post.cov.resize(n, n);

    // Touch the registry before the allocation audit starts: the
    // calling thread's shard (and every instrument cell block) is
    // created here, so in-loop counter adds and histogram records
    // below are guaranteed heap-free.
    obs::Registry::global().prepareThread();
    eo.ws_bytes.set(static_cast<double>(arena.bytes()));

    // The allocation-audited region: every buffer the loop touches
    // was acquired from the arena above, and the operator-new
    // counting hook in the estimator tests asserts the serial loop
    // performs zero heap allocations. leo-lint's hot-alloc check
    // enforces the same contract statically.
    // leo-lint: hot-begin
    const std::size_t alloc0 = counter ? counter() : 0;
    for (std::size_t iter = 0; iter < options_.maxIterations; ++iter) {
        obs::Span iter_span(obs::names::kEmIterSpan, "em");
        obs::ScopedMs iter_timer(eo.iter_ms);
        fit.iterations = iter + 1;

        // E-step, fully-observed applications: factor
        // (Sigma + sigma^2 I) in place and expand the lower triangle
        // of its inverse (the mirror is never materialized — the
        // consumers below are symmetry-aware).
        chol.factorize(sigma_m, sigma2, 1e-6);
        chol.inverseInto(inv, arena, /*mirror=*/false);

        parallel::parallelFor(workers, m_prior, [&](std::size_t i) {
            linalg::Vector &d = dscr[i];
            linalg::Vector &zi = z[i];
            d = shapes[i];
            d -= mu;
            linalg::symv(inv, d, zi);
            ll_quad[i] = linalg::dot(d, zi);
            for (std::size_t j = 0; j < n; ++j)
                zi[j] = shapes[i][j] - sigma2 * zi[j];
        });

        // Marginal log-likelihood under the current theta.
        {
            const double log2pi = std::log(2.0 * std::numbers::pi);
            double ll = -0.5 * static_cast<double>(m_prior) *
                        (static_cast<double>(n) * log2pi +
                         chol.logDet());
            for (std::size_t i = 0; i < m_prior; ++i)
                ll -= 0.5 * ll_quad[i];
            if (have_obs) {
                sigma_m.gatherInto(a_obs, obs_idx);
                chol_obs.factorize(a_obs, sigma2, 1e-8);
                for (std::size_t j = 0; j < s; ++j)
                    d_obs[j] = x_obs[j] - mu[obs_idx[j]];
                chol_obs.solveLowerInPlace(d_obs);
                ll -= 0.5 * (static_cast<double>(s) * log2pi +
                             chol_obs.logDet() +
                             d_obs.squaredNorm());
            }
            fit.logLikelihoodTrace.push_back(ll);
            iter_span.arg("iter", static_cast<double>(iter + 1));
            if (iter > 0) {
                const auto &t = fit.logLikelihoodTrace;
                iter_span.arg("ll_delta",
                              t[t.size() - 1] - t[t.size() - 2]);
            }
        }

        // E-step, target application (sparse observations):
        if (have_obs) {
            stats::conditionOnObservationsInto(
                target_post, cond, mu, sigma_m, obs_idx, x_obs,
                sigma2, true);
        }

        // M-step: mu (Equation 4, mu_0 = 0).
        mu_new.fill(0.0);
        for (const linalg::Vector &zi : z)
            mu_new += zi;
        if (have_obs)
            mu_new += target_post.mean;
        mu_new /= m_total + options_.hyperPi;

        // M-step: Sigma (Equation 4).
        s_accum.fill(0.0);
        s_accum.addScaledSymmetric(
            -sigma2 * sigma2 * static_cast<double>(m_prior), inv);
        s_accum.addToDiagonal(sigma2 * static_cast<double>(m_prior));
        if (have_obs)
            s_accum += target_post.cov;
        parallel::parallelReduceInto(
            workers, m_prior, grain, gram_parts,
            [&](std::size_t b, std::size_t e, linalg::Matrix &part) {
                linalg::Matrix &r = *resid_parts[b / grain];
                for (std::size_t i = b; i < e; ++i)
                    for (std::size_t j = 0; j < n; ++j)
                        r.at(i - b, j) = z[i][j] - mu_new[j];
                linalg::Matrix::gramInto(part, r);
            },
            [](linalg::Matrix &into, const linalg::Matrix &from) {
                into += from;
            });
        s_accum += *gram_parts[0];
        if (have_obs) {
            for (std::size_t j = 0; j < n; ++j)
                d_target[j] = target_post.mean[j] - mu_new[j];
            s_accum.outerAddInto(1.0, d_target, d_target);
        }
        s_accum.outerAddInto(options_.hyperPi, mu_new, mu_new);
        s_accum.addToDiagonal(options_.hyperPsiScale);
        s_accum /= m_total + 1.0;
        s_accum.symmetrize();

        // M-step: sigma^2 (Equation 4).
        double noise_accum = 0.0;
        for (std::size_t i = 0; i < m_prior; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const double cjj =
                    sigma2 - sigma2 * sigma2 * inv.at(j, j);
                const double r = z[i][j] - shapes[i][j];
                noise_accum += cjj + r * r;
            }
        }
        if (have_obs) {
            for (std::size_t j = 0; j < s; ++j) {
                const std::size_t idx = obs_idx[j];
                const double r = target_post.mean[idx] - x_obs[j];
                noise_accum += target_post.cov.at(idx, idx) + r * r;
            }
        }
        double sigma2_new =
            std::max(noise_accum / total_obs, options_.minSigma2);

        // Convergence on the target prediction, as in the reference
        // path (the explicit difference loop reproduces
        // (pred - prev_pred).norm() term for term).
        const linalg::Vector &pred =
            have_obs ? target_post.mean : mu_new;
        double dd = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double t = pred[j] - prev_pred[j];
            dd += t * t;
        }
        const double dpred =
            std::sqrt(dd) / (prev_pred.norm() + 1e-12);
        prev_pred = pred;

        // Swap theta into place; the swapped-out buffers are
        // overwritten wholesale next iteration.
        std::swap(mu, mu_new);
        std::swap(sigma_m, s_accum);
        sigma2 = sigma2_new;

        if (dpred < options_.tolerance) {
            fit.converged = true;
            break;
        }
    }
    if (counter)
        fit.loopAllocations = counter() - alloc0;
    // leo-lint: hot-end

    eo.fits.add(1);
    if (warm_ok)
        eo.warm.add(1);
    eo.iters.add(fit.iterations);
    fit_span.arg("iters", static_cast<double>(fit.iterations));
    fit_span.arg("converged", fit.converged ? 1.0 : 0.0);

    // ---- Prediction ------------------------------------------------
    // Final E-step for the target under the fitted parameters; the
    // prediction is E[z_M | theta-hat] rescaled to raw units.
    if (have_obs) {
        stats::conditionOnObservationsInto(target_post, cond, mu,
                                           sigma_m, obs_idx, x_obs,
                                           sigma2, true);
    } else {
        target_post.mean = mu;
        target_post.cov = sigma_m;
    }

    fit.prediction = linalg::Vector(n);
    fit.predictionVariance = linalg::Vector(n);
    for (std::size_t j = 0; j < n; ++j) {
        fit.prediction[j] =
            std::max(target_post.mean[j] * scale, 0.0);
        fit.predictionVariance[j] =
            (target_post.cov.at(j, j) + sigma2) * scale * scale;
    }
    fit.mu = std::move(mu);
    fit.sigma = std::move(sigma_m);
    fit.sigma2 = sigma2;
    return fit;
}

} // namespace leo::estimators
