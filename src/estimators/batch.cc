/**
 * @file
 * Implementation of batch estimation.
 */

#include "estimators/batch.hh"

#include "parallel/parallel_for.hh"

namespace leo::estimators
{

std::vector<MetricEstimate>
EstimatorBatch::run(const platform::ConfigSpace &space)
{
    std::vector<EstimateRequest> requests = std::move(requests_);
    requests_.clear();
    std::vector<MetricEstimate> results(requests.size());
    parallel::parallelFor(pool_, requests.size(), [&](std::size_t i) {
        const EstimateRequest &r = requests[i];
        results[i] = estimator_.estimateMetric(
            space, r.prior, r.obsIndices, r.obsValues);
    });
    return results;
}

} // namespace leo::estimators
