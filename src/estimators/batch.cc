/**
 * @file
 * Implementation of batch estimation.
 */

#include "estimators/batch.hh"

#include "parallel/parallel_for.hh"

namespace leo::estimators
{

std::vector<MetricEstimate>
EstimatorBatch::run(const platform::ConfigSpace &space)
{
    std::vector<EstimateRequest> requests = std::move(requests_);
    requests_.clear();
    std::vector<MetricEstimate> results(requests.size());
    // Warm-start/fit-out plumbing only exists on LeoEstimator; other
    // estimators silently take the plain interface.
    const auto *as_leo = dynamic_cast<const LeoEstimator *>(&estimator_);
    parallel::parallelFor(pool_, requests.size(), [&](std::size_t i) {
        const EstimateRequest &r = requests[i];
        if (as_leo &&
            (r.warmStart || r.fitOut || r.representation)) {
            results[i] = as_leo->estimateMetric(
                space, r.prior, r.obsIndices, r.obsValues,
                /*ws=*/nullptr, r.warmStart, r.fitOut,
                r.representation.value_or(
                    as_leo->options().representation));
        } else {
            results[i] = estimator_.estimateMetric(
                space, r.prior, r.obsIndices, r.obsValues);
        }
    });
    return results;
}

} // namespace leo::estimators
