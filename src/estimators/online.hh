/**
 * @file
 * The Online baseline of Section 6.2.
 *
 * "This strategy carries out polynomial multivariate regression on
 * the observed dataset using configuration values (the number of
 * cores, memory control and speed-settings) as predictors, and
 * estimates the rest of the datapoints based on the same model...
 * This method uses only the observations and not the prior data."
 */

#ifndef LEO_ESTIMATORS_ONLINE_HH
#define LEO_ESTIMATORS_ONLINE_HH

#include "estimators/estimator.hh"

namespace leo::estimators
{

/**
 * Degree-bounded multivariate polynomial regression over the raw
 * configuration knobs.
 *
 * With the evaluation platform's four knobs and the default total
 * degree 2 the design has C(4+2,2) = 15 features, so the fit is rank
 * deficient below 15 samples — exactly the failure mode Figure 12
 * attributes to the online method. In that regime the estimate falls
 * back to the observed mean and is flagged unreliable.
 */
class OnlineEstimator : public Estimator
{
  public:
    /** @param degree Total polynomial degree (default 2). */
    explicit OnlineEstimator(std::size_t degree = 2);

    std::string name() const override { return "online"; }

    /** @return The polynomial degree. */
    std::size_t degree() const { return degree_; }

    MetricEstimate estimateMetric(
        const platform::ConfigSpace &space,
        const std::vector<linalg::Vector> &prior,
        const std::vector<std::size_t> &obs_idx,
        const linalg::Vector &obs_vals) const override;

  private:
    std::size_t degree_;
};

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_ONLINE_HH
