/**
 * @file
 * The Offline baseline of Section 6.2.
 *
 * "This method takes the mean over the rest of the applications to
 * estimate the power and performance of the given application... This
 * strategy only uses prior information and does not update based on
 * runtime observations."
 */

#ifndef LEO_ESTIMATORS_OFFLINE_HH
#define LEO_ESTIMATORS_OFFLINE_HH

#include "estimators/estimator.hh"

namespace leo::estimators
{

/**
 * Predicts the mean shape of the prior applications.
 *
 * The shape never adapts to the target; when observations exist they
 * are used only to anchor the output scale (the raw-unit analogue of
 * predicting in speedup space — see normalization.hh).
 */
class OfflineEstimator : public Estimator
{
  public:
    std::string name() const override { return "offline"; }

    MetricEstimate estimateMetric(
        const platform::ConfigSpace &space,
        const std::vector<linalg::Vector> &prior,
        const std::vector<std::size_t> &obs_idx,
        const linalg::Vector &obs_vals) const override;

    /**
     * The prior mean shape alone (unit mean), without scale
     * anchoring. Useful as the EM initializer (Section 5.5 notes that
     * initializing mu from the offline estimate improves accuracy).
     */
    static linalg::Vector meanShape(
        const std::vector<linalg::Vector> &prior);
};

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_OFFLINE_HH
