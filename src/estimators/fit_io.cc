/**
 * @file
 * Implementation of LeoFit serialization.
 */

#include "estimators/fit_io.hh"

namespace leo::estimators
{

namespace
{

/** Format version; bump when the field list changes. */
constexpr std::uint32_t kFitVersion = 1;

} // namespace

void
saveFit(linalg::ByteWriter &w, const LeoFit &fit)
{
    w.u32(kFitVersion);
    w.vec(fit.prediction);
    w.vec(fit.predictionVariance);
    w.vec(fit.mu);
    w.mat(fit.sigma);
    w.f64(fit.sigma2);
    w.u64(fit.iterations);
    w.u8(fit.converged ? 1 : 0);
    w.u64(fit.logLikelihoodTrace.size());
    for (double v : fit.logLikelihoodTrace)
        w.f64(v);
    w.f64(fit.scale);
    w.u8(fit.warmStarted ? 1 : 0);
    w.u8(fit.lowRank ? 1 : 0);
    w.mat(fit.basisT);
    w.mat(fit.coeff);
    w.f64(fit.alphaDiag);
    w.mat(fit.varCore);
}

LeoFit
loadFit(linalg::ByteReader &r)
{
    LeoFit fit;
    if (r.u32() != kFitVersion) {
        r.fail();
        return fit;
    }
    fit.prediction = r.vec();
    fit.predictionVariance = r.vec();
    fit.mu = r.vec();
    fit.sigma = r.mat();
    fit.sigma2 = r.f64();
    fit.iterations = static_cast<std::size_t>(r.u64());
    fit.converged = r.u8() != 0;
    const std::uint64_t traces = r.u64();
    for (std::uint64_t i = 0; i < traces && r.ok(); ++i)
        fit.logLikelihoodTrace.push_back(r.f64());
    fit.scale = r.f64();
    fit.warmStarted = r.u8() != 0;
    fit.lowRank = r.u8() != 0;
    fit.basisT = r.mat();
    fit.coeff = r.mat();
    fit.alphaDiag = r.f64();
    fit.varCore = r.mat();
    return fit;
}

} // namespace leo::estimators
