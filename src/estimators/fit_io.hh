/**
 * @file
 * Bit-exact serialization of LeoFit.
 *
 * The snapshot/restore path of the multi-tenant service (and the
 * runtime controller underneath it) persists the warm-start state a
 * session accumulated — for a LEO session that is a pair of LeoFits,
 * including the low-rank factors. Round trips are exact: a restored
 * fit warm-starts EM from bitwise-identical theta, so a resumed
 * session reproduces the uninterrupted run's schedule bit for bit.
 */

#ifndef LEO_ESTIMATORS_FIT_IO_HH
#define LEO_ESTIMATORS_FIT_IO_HH

#include "estimators/leo.hh"
#include "linalg/serialize.hh"

namespace leo::estimators
{

/** Append every field of `fit` to `w` (see linalg/serialize.hh). */
void saveFit(linalg::ByteWriter &w, const LeoFit &fit);

/**
 * Read a LeoFit written by saveFit(). Never throws; on a truncated
 * or corrupt buffer the reader's ok() flips false and the returned
 * fit is value-initialized — callers validate r.ok() once at the end
 * of their restore.
 */
LeoFit loadFit(linalg::ByteReader &r);

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_FIT_IO_HH
