/**
 * @file
 * Implementation of observation sanitization.
 */

#include "estimators/sanitize.hh"

#include <cmath>

#include "linalg/error.hh"
#include "obs/obs.hh"

namespace leo::estimators
{

namespace
{

/** A usable sample: in-range index, finite strictly-positive value. */
bool
sampleValid(std::size_t idx, double val, std::size_t space_size)
{
    return idx < space_size && std::isfinite(val) && val > 0.0;
}

/** Registry instruments of the sanitizer (lazily registered). */
struct SanitizeObs
{
    obs::Counter rejected =
        obs::Registry::global().counter(obs::names::kSanitizeSamplesRejected);
    obs::Counter merged =
        obs::Registry::global().counter(obs::names::kSanitizeSamplesMerged);
};

SanitizeObs &
sanitizeObs()
{
    static SanitizeObs o;
    return o;
}

} // namespace

bool
observationsClean(const std::vector<std::size_t> &idx,
                  const linalg::Vector &vals, std::size_t space_size)
{
    if (idx.size() != vals.size())
        return false;
    for (std::size_t j = 0; j < idx.size(); ++j) {
        if (!sampleValid(idx[j], vals[j], space_size))
            return false;
        for (std::size_t k = 0; k < j; ++k)
            if (idx[k] == idx[j])
                return false;
    }
    return true;
}

SanitizedObservations
sanitizeObservations(const std::vector<std::size_t> &idx,
                     const linalg::Vector &vals, std::size_t space_size)
{
    require(idx.size() == vals.size(),
            "sanitizeObservations: index/value size mismatch");

    SanitizedObservations out;
    if (observationsClean(idx, vals, space_size))
        return out; // modified stays false; caller uses its buffers.

    out.modified = true;
    // Per surviving index (first-occurrence order): every valid
    // value observed for it, gathered before any arithmetic.
    std::vector<std::vector<double>> gathered;
    out.indices.reserve(idx.size());
    for (std::size_t j = 0; j < idx.size(); ++j) {
        if (!sampleValid(idx[j], vals[j], space_size)) {
            ++out.rejected;
            continue;
        }
        std::size_t pos = out.indices.size();
        for (std::size_t k = 0; k < out.indices.size(); ++k) {
            if (out.indices[k] == idx[j]) {
                pos = k;
                break;
            }
        }
        if (pos == out.indices.size()) {
            out.indices.push_back(idx[j]);
            gathered.emplace_back(1, vals[j]);
        } else {
            gathered[pos].push_back(vals[j]);
            ++out.merged;
        }
    }
    // Merge duplicates order-independently: a running mean depends
    // on arrival order (floating-point addition is not associative),
    // which breaks the contract that permuted duplicate sets — which
    // collide in Observations::contentHash and trace replays produce
    // routinely — sanitize to bitwise-identical values. Summing in
    // ascending value order is the deterministic tie-break, and a
    // set of identical readings (repeated trace rows) reproduces the
    // reading exactly.
    out.values.reserve(out.indices.size());
    for (auto &dup : gathered) {
        bool all_equal = true;
        for (const double v : dup)
            all_equal = all_equal && v == dup.front();
        if (all_equal) {
            out.values.push_back(dup.front());
            continue;
        }
        for (std::size_t i = 1; i < dup.size(); ++i) {
            const double v = dup[i];
            std::size_t k = i;
            while (k > 0 && dup[k - 1] > v) {
                dup[k] = dup[k - 1];
                --k;
            }
            dup[k] = v;
        }
        double sum = 0.0;
        for (const double v : dup)
            sum += v;
        out.values.push_back(sum /
                             static_cast<double>(dup.size()));
    }
    SanitizeObs &so = sanitizeObs();
    so.rejected.add(out.rejected);
    so.merged.add(out.merged);
    return out;
}

} // namespace leo::estimators
