/**
 * @file
 * Implementation of observation sanitization.
 */

#include "estimators/sanitize.hh"

#include <cmath>

#include "linalg/error.hh"
#include "obs/obs.hh"

namespace leo::estimators
{

namespace
{

/** A usable sample: in-range index, finite strictly-positive value. */
bool
sampleValid(std::size_t idx, double val, std::size_t space_size)
{
    return idx < space_size && std::isfinite(val) && val > 0.0;
}

/** Registry instruments of the sanitizer (lazily registered). */
struct SanitizeObs
{
    obs::Counter rejected =
        obs::Registry::global().counter(obs::names::kSanitizeSamplesRejected);
    obs::Counter merged =
        obs::Registry::global().counter(obs::names::kSanitizeSamplesMerged);
};

SanitizeObs &
sanitizeObs()
{
    static SanitizeObs o;
    return o;
}

} // namespace

bool
observationsClean(const std::vector<std::size_t> &idx,
                  const linalg::Vector &vals, std::size_t space_size)
{
    if (idx.size() != vals.size())
        return false;
    for (std::size_t j = 0; j < idx.size(); ++j) {
        if (!sampleValid(idx[j], vals[j], space_size))
            return false;
        for (std::size_t k = 0; k < j; ++k)
            if (idx[k] == idx[j])
                return false;
    }
    return true;
}

SanitizedObservations
sanitizeObservations(const std::vector<std::size_t> &idx,
                     const linalg::Vector &vals, std::size_t space_size)
{
    require(idx.size() == vals.size(),
            "sanitizeObservations: index/value size mismatch");

    SanitizedObservations out;
    if (observationsClean(idx, vals, space_size))
        return out; // modified stays false; caller uses its buffers.

    out.modified = true;
    // Per surviving index: sample count for the duplicate average.
    std::vector<double> count;
    out.indices.reserve(idx.size());
    for (std::size_t j = 0; j < idx.size(); ++j) {
        if (!sampleValid(idx[j], vals[j], space_size)) {
            ++out.rejected;
            continue;
        }
        std::size_t pos = out.indices.size();
        for (std::size_t k = 0; k < out.indices.size(); ++k) {
            if (out.indices[k] == idx[j]) {
                pos = k;
                break;
            }
        }
        if (pos == out.indices.size()) {
            out.indices.push_back(idx[j]);
            out.values.push_back(vals[j]);
            count.push_back(1.0);
        } else {
            // Running mean keeps the merge single-pass.
            count[pos] += 1.0;
            out.values[pos] += (vals[j] - out.values[pos]) / count[pos];
            ++out.merged;
        }
    }
    SanitizeObs &so = sanitizeObs();
    so.rejected.add(out.rejected);
    so.merged.add(out.merged);
    return out;
}

} // namespace leo::estimators
