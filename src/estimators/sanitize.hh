/**
 * @file
 * Input sanitization at the estimator boundary.
 *
 * The online measurement path can hand the estimators corrupted
 * observations — NaN/Inf readings from a failed sensor poll, zero
 * readings from a dropout, duplicated configuration indices from a
 * retried probe (see faults/faults.hh for the fault model). Every
 * estimator sanitizes its observation set through this helper before
 * fitting, so a single bad reading degrades the fit instead of
 * crashing it.
 *
 * Repair rules, in order:
 *  1. Reject samples whose configuration index is out of range.
 *  2. Reject samples whose value is non-finite or <= 0 (performance
 *     and power are strictly positive physical quantities; an exact
 *     zero is a dropout, not a measurement).
 *  3. Merge samples that repeat a configuration index by averaging
 *     their values (the maximum-likelihood combination of
 *     equal-noise readings), keeping first-occurrence order. The
 *     average is computed order-independently — values are summed in
 *     ascending order, and a set of bit-identical readings (trace
 *     replays repeat rows verbatim) merges to exactly that reading —
 *     so any permutation of the same duplicate set sanitizes to
 *     bitwise-identical values, matching the permutation-invariant
 *     Observations::contentHash the service's fit cache keys on.
 *
 * A clean observation set passes through untouched — `modified` is
 * false and the caller keeps using its own buffers — so sanitization
 * is exact (0 ULP) on the fault-free path.
 */

#ifndef LEO_ESTIMATORS_SANITIZE_HH
#define LEO_ESTIMATORS_SANITIZE_HH

#include <cstddef>
#include <vector>

#include "linalg/vector.hh"

namespace leo::estimators
{

/** Result of sanitizing an observation set. */
struct SanitizedObservations
{
    /** Surviving configuration indices (first-occurrence order). */
    std::vector<std::size_t> indices;
    /** Surviving values, aligned with indices. */
    linalg::Vector values;
    /** Samples dropped (non-finite, non-positive or out of range). */
    std::size_t rejected = 0;
    /** Samples merged into an earlier duplicate index. */
    std::size_t merged = 0;
    /** True iff the output differs from the input. When false the
     *  output buffers are left empty: use the originals. */
    bool modified = false;
};

/**
 * Validate and repair one metric's observations.
 *
 * @param idx        Observed configuration indices.
 * @param vals       Observed values, aligned with idx.
 * @param space_size Number of configurations (index upper bound).
 * @return The sanitized set; see SanitizedObservations::modified.
 */
SanitizedObservations sanitizeObservations(
    const std::vector<std::size_t> &idx, const linalg::Vector &vals,
    std::size_t space_size);

/**
 * Quick check for the fast path: true iff sanitizeObservations would
 * return the input unchanged.
 */
bool observationsClean(const std::vector<std::size_t> &idx,
                       const linalg::Vector &vals,
                       std::size_t space_size);

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_SANITIZE_HH
