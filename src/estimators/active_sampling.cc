/**
 * @file
 * Implementation of variance-guided active sampling.
 */

#include "estimators/active_sampling.hh"

#include <algorithm>
#include <vector>

#include "linalg/error.hh"
#include "obs/obs.hh"

namespace leo::estimators
{

namespace
{

/** Registry instruments of the active sampler. */
struct SamplingObs
{
    obs::Counter probes =
        obs::Registry::global().counter(obs::names::kSamplingProbesMeasured);
    obs::Counter rounds =
        obs::Registry::global().counter(obs::names::kSamplingRoundsGuided);
};

SamplingObs &
samplingObs()
{
    static SamplingObs o;
    return o;
}

} // namespace

VarianceGuidedSampler::VarianceGuidedSampler(
    ActiveSamplingOptions options)
    : options_(options)
{
    require(options_.seedProbes >= 1,
            "VarianceGuidedSampler: need >= 1 seed probe");
    require(options_.batchSize >= 1,
            "VarianceGuidedSampler: need >= 1 probe per batch");
}

telemetry::Observations
VarianceGuidedSampler::collect(const MeasureFn &measure,
                               const std::vector<linalg::Vector> &prior,
                               std::size_t budget,
                               stats::Rng &rng) const
{
    require(!prior.empty(),
            "VarianceGuidedSampler: needs prior applications");
    const std::size_t n = prior.front().size();
    budget = std::min(budget, n);

    telemetry::Observations obs;
    std::vector<bool> seen(n, false);

    auto probe = [&](std::size_t idx) {
        obs::Span span(obs::names::kSamplingProbeSpan, "sampling");
        span.arg("config", static_cast<double>(idx));
        telemetry::Sample s = measure(idx);
        require(s.configIndex == idx,
                "VarianceGuidedSampler: callback measured the wrong "
                "configuration");
        obs.push(s);
        seen[idx] = true;
        samplingObs().probes.add(1);
    };

    // Seed with random probes so the first fit has an anchor.
    const std::size_t n_seed = std::min(options_.seedProbes, budget);
    for (std::size_t idx :
         rng.sampleWithoutReplacement(n, n_seed)) {
        probe(idx);
    }

    const LeoEstimator estimator(options_.estimator);
    // One workspace and one previous fit serve every guidance round:
    // refits reuse the arena's buffers and (when enabled) warm-start
    // EM from the previous round's parameters.
    linalg::Workspace ws;
    LeoFit fit;
    bool have_fit = false;
    while (obs.size() < budget) {
        samplingObs().rounds.add(1);
        const LeoFit *warm =
            (options_.warmStartRefits && have_fit) ? &fit : nullptr;
        fit = estimator.fitMetric(prior, obs.indices,
                                  obs.performance, &ws, warm);
        have_fit = true;

        // Rank unobserved configurations by predictive variance. A
        // low-rank fit run with expandVariance=false never
        // materialized the n-vector; read the q x n factor directly
        // instead — lowRankPredictiveVariance evaluates each entry
        // bitwise identically to the expanded fill, so the ranking
        // (and every probe it picks) matches the expanded path.
        const bool factored =
            fit.lowRank && fit.predictionVariance.size() == 0;
        std::vector<std::size_t> order;
        order.reserve(n);
        std::vector<double> variance(n, 0.0);
        for (std::size_t c = 0; c < n; ++c) {
            if (seen[c])
                continue;
            order.push_back(c);
            variance[c] = factored
                              ? lowRankPredictiveVariance(fit, c)
                              : fit.predictionVariance[c];
        }
        invariant(!order.empty(),
                  "active sampling exhausted the space early");
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return variance[a] > variance[b];
                  });

        const std::size_t take = std::min(
            {options_.batchSize, budget - obs.size(), order.size()});
        for (std::size_t k = 0; k < take; ++k)
            probe(order[k]);
    }
    return obs;
}

} // namespace leo::estimators
