/**
 * @file
 * Variance-guided active sampling.
 *
 * An extension beyond the paper's protocol (which samples uniformly
 * at random, Section 6.3): the hierarchical model's posterior
 * predictive variance says exactly where the estimate is least
 * certain, so the sampler can spend its measurement budget there.
 * Probes proceed in batches — seed with a few random configurations,
 * fit, measure the highest-variance unobserved configurations, refit,
 * repeat. The abl02_active_sampling bench quantifies the accuracy
 * gain over random sampling at equal budget.
 */

#ifndef LEO_ESTIMATORS_ACTIVE_SAMPLING_HH
#define LEO_ESTIMATORS_ACTIVE_SAMPLING_HH

#include <functional>

#include "estimators/leo.hh"
#include "telemetry/measurement.hh"

namespace leo::estimators
{

/** Knobs of the active sampler. */
struct ActiveSamplingOptions
{
    /** Random probes before the first fit. */
    std::size_t seedProbes = 4;
    /** Probes added per fit-and-select round. */
    std::size_t batchSize = 4;
    /** Estimator used for the guidance fits. */
    LeoOptions estimator;
    /**
     * Start each guidance refit from the previous round's fitted
     * parameters instead of the cold init. Successive rounds differ
     * by only a few observations, so the warm EM typically converges
     * in 1-2 iterations instead of 3-4; together with workspace reuse
     * this makes refits several times cheaper. Selection can differ
     * from cold fitting only through the EM iteration count.
     */
    bool warmStartRefits = true;
};

/**
 * Collects observations by maximizing posterior predictive variance.
 */
class VarianceGuidedSampler
{
  public:
    /** A measurement callback: run one window in a configuration. */
    using MeasureFn = std::function<telemetry::Sample(std::size_t)>;

    explicit VarianceGuidedSampler(
        ActiveSamplingOptions options = ActiveSamplingOptions{});

    /**
     * Spend a measurement budget guided by the model.
     *
     * @param measure Callback that runs the target application in a
     *                configuration and returns the measured sample.
     * @param prior   Fully observed prior vectors for the metric that
     *                guides selection (typically performance).
     * @param budget  Total number of observations to take.
     * @param rng     Randomness for the seed probes.
     * @return All collected observations (|result| == budget, unless
     *         the space is smaller).
     */
    telemetry::Observations collect(
        const MeasureFn &measure,
        const std::vector<linalg::Vector> &prior, std::size_t budget,
        stats::Rng &rng) const;

  private:
    ActiveSamplingOptions options_;
};

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_ACTIVE_SAMPLING_HH
