/**
 * @file
 * Scale normalization shared by the prior-based estimators.
 *
 * Applications report performance in their own heartbeat units (a
 * frame, a clustered sample, a serviced request), so the absolute
 * rates of different applications differ by orders of magnitude.
 * Sharing statistical strength across applications — the essence of
 * the hierarchical model — therefore happens in *shape* space: every
 * application vector is divided by its mean, estimation runs on the
 * normalized vectors, and the target's prediction is rescaled by the
 * mean of its own observed values. This is the raw-unit equivalent of
 * the paper's use of speedup for performance (Fig. 5). Note that the
 * accuracy metric of Equation (5) is invariant under common scaling,
 * so accuracies computed in raw units equal those computed on
 * speedups.
 */

#ifndef LEO_ESTIMATORS_NORMALIZATION_HH
#define LEO_ESTIMATORS_NORMALIZATION_HH

#include <vector>

#include "linalg/vector.hh"

namespace leo::estimators
{

/**
 * Divide each prior vector by its own mean.
 *
 * @param prior Fully observed application vectors.
 * @return Mean-normalized copies (unit-mean shapes).
 */
std::vector<linalg::Vector> normalizeShapes(
    const std::vector<linalg::Vector> &prior);

/**
 * The target's scale anchor: the mean of its observed values.
 *
 * @param obs_vals Observed values (must be non-empty and positive
 *                 mean).
 * @return The anchor (divide observations by it; multiply
 *         predictions by it).
 */
double observedScale(const linalg::Vector &obs_vals);

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_NORMALIZATION_HH
