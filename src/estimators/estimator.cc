/**
 * @file
 * Shared estimator plumbing.
 */

#include "estimators/estimator.hh"

namespace leo::estimators
{

Estimate
Estimator::estimate(const EstimationInputs &inputs) const
{
    Estimate e;
    e.performance = estimateMetric(
        inputs.space, priorVectors(inputs.prior, Metric::Performance),
        inputs.observations.indices, inputs.observations.performance);
    e.power = estimateMetric(
        inputs.space, priorVectors(inputs.prior, Metric::Power),
        inputs.observations.indices, inputs.observations.power);
    return e;
}

std::vector<linalg::Vector>
priorVectors(const telemetry::ProfileStore &store, Metric metric)
{
    std::vector<linalg::Vector> out;
    out.reserve(store.numApplications());
    for (const telemetry::ApplicationRecord &r : store.records()) {
        out.push_back(metric == Metric::Performance ? r.performance
                                                    : r.power);
    }
    return out;
}

} // namespace leo::estimators
