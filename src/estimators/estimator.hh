/**
 * @file
 * The estimator interface.
 *
 * An estimator predicts an application's performance and power in
 * *every* configuration from (a) the offline profiles of previously
 * seen applications and (b) a small set of online observations of the
 * target application. The four approaches of Section 6.2 — LEO,
 * Online, Offline and Exhaustive — all fit behind this interface.
 */

#ifndef LEO_ESTIMATORS_ESTIMATOR_HH
#define LEO_ESTIMATORS_ESTIMATOR_HH

#include <string>
#include <vector>

#include "linalg/vector.hh"
#include "platform/config_space.hh"
#include "telemetry/measurement.hh"
#include "telemetry/profile_store.hh"

namespace leo::estimators
{

/** Which quantity is being estimated. */
enum class Metric
{
    Performance, //!< Heartbeat rate (r_c of Equation 1).
    Power        //!< Wall power (p_c of Equation 1).
};

/** Result of estimating one metric across all configurations. */
struct MetricEstimate
{
    /** Estimated value per configuration (raw units). */
    linalg::Vector values;
    /**
     * False when the estimator could not produce a statistically
     * meaningful fit (e.g. the online design matrix is rank deficient
     * below 15 samples, Fig. 12) or had to fall back after a failed
     * or degenerate fit (see DESIGN.md "Failure model").
     */
    bool reliable = true;
    /** Iterations used by iterative fitters (EM), 0 otherwise. */
    std::size_t iterations = 0;
    /** Observations dropped by input sanitization (non-finite,
     *  non-positive or out-of-range readings; see sanitize.hh). */
    std::size_t samplesRejected = 0;
};

/** Estimates of both metrics. */
struct Estimate
{
    MetricEstimate performance;
    MetricEstimate power;
};

/** Everything an estimator may draw on. */
struct EstimationInputs
{
    /** The configuration space (knob values for regressions). */
    const platform::ConfigSpace &space;
    /** Offline profiles of other applications (may be empty). */
    const telemetry::ProfileStore &prior;
    /** Online observations of the target (may be empty). */
    const telemetry::Observations &observations;
};

/**
 * Abstract estimator. Implementations estimate one metric at a time;
 * estimate() runs both.
 */
class Estimator
{
  public:
    virtual ~Estimator() = default;

    /** @return The approach's name ("leo", "online", "offline"). */
    virtual std::string name() const = 0;

    /**
     * Estimate one metric in every configuration.
     *
     * @param space    Configuration space.
     * @param prior    One fully observed vector per prior application
     *                 (this metric only); may be empty.
     * @param obs_idx  Observed configuration indices Omega.
     * @param obs_vals Observed values at those indices.
     */
    virtual MetricEstimate estimateMetric(
        const platform::ConfigSpace &space,
        const std::vector<linalg::Vector> &prior,
        const std::vector<std::size_t> &obs_idx,
        const linalg::Vector &obs_vals) const = 0;

    /** Estimate performance and power from the bundled inputs. */
    Estimate estimate(const EstimationInputs &inputs) const;
};

/**
 * Extract the per-metric prior vectors from a profile store.
 *
 * @param store  The offline database.
 * @param metric Which metric to extract.
 * @return One vector per stored application.
 */
std::vector<linalg::Vector> priorVectors(
    const telemetry::ProfileStore &store, Metric metric);

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_ESTIMATOR_HH
