/**
 * @file
 * Batch estimation: many independent estimateMetric() calls fanned
 * across a thread pool.
 *
 * This is the scaling path for the experiment drivers (leave-one-out
 * accuracy sweeps run 25 independent fits per metric) and for any
 * server-style deployment estimating several target applications at
 * once. Each request is one task; a fit executing on a pool worker
 * runs its own inner loops inline (parallel_for.hh nesting rule), so
 * a batch never over-subscribes the machine and every result is
 * bitwise identical to running the same request alone.
 */

#ifndef LEO_ESTIMATORS_BATCH_HH
#define LEO_ESTIMATORS_BATCH_HH

#include <cstddef>
#include <optional>
#include <vector>

#include "estimators/estimator.hh"
#include "estimators/leo.hh"
#include "parallel/thread_pool.hh"

namespace leo::estimators
{

/** One batch entry: the online inputs of a single target app. */
struct EstimateRequest
{
    /** Offline prior vectors for this target (e.g. leave-one-out). */
    std::vector<linalg::Vector> prior;
    /** Observed configuration indices Omega. */
    std::vector<std::size_t> obsIndices;
    /** Observed values at those indices. */
    linalg::Vector obsValues;
    /**
     * Previous fit to warm-start this request's EM from (LEO
     * estimators only; ignored by others and by invalid fits). The
     * pointed-to fit must outlive run().
     */
    const LeoFit *warmStart = nullptr;
    /**
     * When non-null, receives this request's full fit so the caller
     * can warm-start the next batch (LEO estimators only). Distinct
     * requests must point at distinct fits.
     */
    LeoFit *fitOut = nullptr;
    /**
     * Per-request covariance representation override (LEO estimators
     * only). The multi-tenant service resolves Auto per tenant at
     * admission and pins it here so one shared estimator serves mixed
     * dense/low-rank batches; nullopt uses the estimator's own
     * options().representation, bitwise identical to before the field
     * existed.
     */
    std::optional<CovarianceRep> representation;
};

/**
 * A queue of estimation requests executed together on a pool.
 *
 * Usage: add() every request, then run() once; results come back in
 * add() order. The batch holds references to the estimator and pool,
 * which must outlive it.
 */
class EstimatorBatch
{
  public:
    /**
     * @param estimator Estimator shared by every request (its
     *                  estimateMetric must be const-thread-safe, as
     *                  all in-tree estimators are).
     * @param pool      Pool the requests fan across.
     */
    EstimatorBatch(const Estimator &estimator,
                   parallel::ThreadPool &pool)
        : estimator_(estimator), pool_(pool)
    {
    }

    /** Queue one request; @return its index into run()'s result. */
    std::size_t add(EstimateRequest request)
    {
        requests_.push_back(std::move(request));
        return requests_.size() - 1;
    }

    /** @return Number of queued requests. */
    std::size_t size() const { return requests_.size(); }

    /**
     * Run every queued request across the pool and clear the queue.
     *
     * The first exception thrown by any request propagates after all
     * requests finished.
     *
     * @param space The configuration space shared by the batch.
     * @return One MetricEstimate per request, in add() order.
     */
    std::vector<MetricEstimate> run(const platform::ConfigSpace &space);

  private:
    const Estimator &estimator_;
    parallel::ThreadPool &pool_;
    std::vector<EstimateRequest> requests_;
};

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_BATCH_HH
