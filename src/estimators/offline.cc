/**
 * @file
 * Implementation of the Offline baseline.
 */

#include "estimators/offline.hh"

#include "estimators/normalization.hh"
#include "linalg/error.hh"

namespace leo::estimators
{

linalg::Vector
OfflineEstimator::meanShape(const std::vector<linalg::Vector> &prior)
{
    require(!prior.empty(), "OfflineEstimator: no prior applications");
    const std::vector<linalg::Vector> shapes = normalizeShapes(prior);
    linalg::Vector mean(shapes.front().size(), 0.0);
    for (const linalg::Vector &s : shapes)
        mean += s;
    mean /= static_cast<double>(shapes.size());
    return mean;
}

MetricEstimate
OfflineEstimator::estimateMetric(
    const platform::ConfigSpace &space,
    const std::vector<linalg::Vector> &prior,
    const std::vector<std::size_t> &obs_idx,
    const linalg::Vector &obs_vals) const
{
    require(!prior.empty(), "OfflineEstimator: no prior applications");
    require(prior.front().size() == space.size(),
            "OfflineEstimator: prior/space size mismatch");

    linalg::Vector shape = meanShape(prior);

    MetricEstimate est;
    if (!obs_idx.empty()) {
        // Anchor the unit-mean shape to the target's observed scale.
        const double target_scale = observedScale(obs_vals);
        const double shape_at_obs = shape.gather(obs_idx).mean();
        require(shape_at_obs > 0.0,
                "OfflineEstimator: degenerate shape at observations");
        shape *= target_scale / shape_at_obs;
    }
    est.values = std::move(shape);
    est.reliable = true;
    return est;
}

} // namespace leo::estimators
