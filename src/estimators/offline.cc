/**
 * @file
 * Implementation of the Offline baseline.
 */

#include "estimators/offline.hh"

#include "estimators/normalization.hh"
#include "estimators/sanitize.hh"
#include "linalg/error.hh"

namespace leo::estimators
{

linalg::Vector
OfflineEstimator::meanShape(const std::vector<linalg::Vector> &prior)
{
    require(!prior.empty(), "OfflineEstimator: no prior applications");
    const std::vector<linalg::Vector> shapes = normalizeShapes(prior);
    linalg::Vector mean(shapes.front().size(), 0.0);
    for (const linalg::Vector &s : shapes)
        mean += s;
    mean /= static_cast<double>(shapes.size());
    return mean;
}

MetricEstimate
OfflineEstimator::estimateMetric(
    const platform::ConfigSpace &space,
    const std::vector<linalg::Vector> &prior,
    const std::vector<std::size_t> &obs_idx,
    const linalg::Vector &obs_vals) const
{
    require(!prior.empty(), "OfflineEstimator: no prior applications");
    require(prior.front().size() == space.size(),
            "OfflineEstimator: prior/space size mismatch");

    linalg::Vector shape = meanShape(prior);

    // Sanitize the anchoring observations: a NaN or dropout reading
    // must not poison the scale (or throw out of observedScale).
    const SanitizedObservations clean =
        sanitizeObservations(obs_idx, obs_vals, space.size());
    const std::vector<std::size_t> &oidx =
        clean.modified ? clean.indices : obs_idx;
    const linalg::Vector &ovals = clean.modified ? clean.values : obs_vals;

    MetricEstimate est;
    est.samplesRejected = clean.rejected;
    est.reliable = true;
    if (!oidx.empty()) {
        // Anchor the unit-mean shape to the target's observed scale.
        const double target_scale = observedScale(ovals);
        const double shape_at_obs = shape.gather(oidx).mean();
        if (shape_at_obs > 0.0) {
            shape *= target_scale / shape_at_obs;
        } else {
            // Degenerate shape at the observed indices: keep the
            // unanchored shape rather than dividing by zero.
            est.reliable = false;
        }
    } else if (!obs_idx.empty()) {
        // Observations existed but none survived sanitization: the
        // scale anchor is gone.
        est.reliable = false;
    }
    est.values = std::move(shape);
    return est;
}

} // namespace leo::estimators
