/**
 * @file
 * Implementation of the fault-injecting telemetry wrappers.
 */

#include "faults/faults.hh"

#include <limits>

#include "linalg/error.hh"
#include "obs/obs.hh"

namespace leo::faults
{

namespace
{

/** Registry instruments of the fault injector. */
struct FaultObs
{
    obs::Counter readings =
        obs::Registry::global().counter(obs::names::kFaultsReadingsSeen);
    obs::Counter injected =
        obs::Registry::global().counter(obs::names::kFaultsReadingsCorrupted);
};

FaultObs &
faultObs()
{
    static FaultObs o;
    return o;
}

} // namespace

FaultInjector::FaultInjector(const FaultScenario &scenario)
    : scenario_(scenario), rng_(scenario.seed)
{
    auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
    require(prob(scenario_.nanProb) && prob(scenario_.infProb) &&
                prob(scenario_.dropoutProb) &&
                prob(scenario_.outlierProb) && prob(scenario_.staleProb),
            "FaultInjector: probabilities must be in [0, 1]");
    require(scenario_.nanProb + scenario_.infProb +
                    scenario_.dropoutProb + scenario_.outlierProb +
                    scenario_.staleProb <=
                1.0 + 1e-12,
            "FaultInjector: fault probabilities must sum to <= 1");
}

double
FaultInjector::corrupt(double clean)
{
    ++readings_;
    faultObs().readings.add(1);
    // One uniform draw per reading, partitioned across the fault
    // classes: the draw count (and with it the fault stream's
    // alignment) never depends on which faults fired earlier.
    const double u = rng_.uniform();
    double out = clean;
    double edge = scenario_.nanProb;
    if (u < edge) {
        out = std::numeric_limits<double>::quiet_NaN();
    } else if (u < (edge += scenario_.infProb)) {
        out = std::numeric_limits<double>::infinity();
    } else if (u < (edge += scenario_.dropoutProb)) {
        out = 0.0;
    } else if (u < (edge += scenario_.outlierProb)) {
        out = clean * scenario_.outlierScale;
    } else if (u < edge + scenario_.staleProb && have_last_) {
        out = last_;
    }
    if (out != clean) { // NaN compares unequal, so it counts too
        ++faults_;
        faultObs().injected.add(1);
    }
    // A stuck sensor repeats what it last *reported*, corrupted or
    // not — so stale runs can re-emit an earlier outlier.
    last_ = out;
    have_last_ = true;
    return out;
}

FaultyPowerMeter::FaultyPowerMeter(const telemetry::PowerMeter &inner,
                                   const FaultScenario &scenario)
    : inner_(inner), injector_(scenario)
{
}

double
FaultyPowerMeter::read(const workloads::ApplicationBehavior &model,
                       const platform::ResourceAssignment &ra,
                       stats::Rng &rng) const
{
    return injector_.corrupt(inner_.read(model, ra, rng));
}

FaultyHeartbeatMonitor::FaultyHeartbeatMonitor(
    const telemetry::HeartbeatMonitor &inner,
    const FaultScenario &scenario)
    : inner_(inner), injector_(scenario)
{
}

double
FaultyHeartbeatMonitor::measureRate(
    const workloads::ApplicationBehavior &model,
    const platform::ResourceAssignment &ra, stats::Rng &rng) const
{
    return injector_.corrupt(inner_.measureRate(model, ra, rng));
}

} // namespace leo::faults
