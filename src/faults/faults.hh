/**
 * @file
 * Deterministic fault injection for the online telemetry path.
 *
 * LEO's value is *online* operation (Section 6.6): the controller
 * keeps estimating and re-planning while the application runs, so a
 * single NaN power reading or a stuck sensor must never crash or
 * silently corrupt a fit. Related online-estimation systems (REOH,
 * arXiv:1801.10263; "The Case for Learning Application Behavior",
 * arXiv:2004.13074) both identify noisy and partial runtime
 * measurements as the practical failure mode.
 *
 * This subsystem wraps the simulated meters of telemetry/meters.hh
 * with seeded fault injectors so the robustness of the
 * telemetry -> estimator -> optimizer -> runtime path can be tested
 * deterministically. The fault stream draws from its own Rng (seeded
 * per scenario), so wrapping a meter never perturbs the measurement
 * noise stream: with every fault probability at zero a wrapped meter
 * is bitwise identical to the bare one.
 */

#ifndef LEO_FAULTS_FAULTS_HH
#define LEO_FAULTS_FAULTS_HH

#include <cstddef>
#include <cstdint>

#include "stats/rng.hh"
#include "telemetry/meters.hh"

namespace leo::faults
{

/**
 * A fault scenario: per-reading probabilities of each fault class.
 *
 * At most one fault fires per reading (the classes partition one
 * uniform draw), so the probabilities must sum to <= 1.
 */
struct FaultScenario
{
    /** Seed of the fault stream (independent of measurement noise). */
    std::uint64_t seed = 0xfa017u;
    /** P(reading becomes quiet NaN) — a failed sensor poll. */
    double nanProb = 0.0;
    /** P(reading becomes +infinity) — a counter overflow artifact. */
    double infProb = 0.0;
    /** P(reading becomes 0) — a dropout (the sensor returned
     *  nothing and the harness reported an empty sample). */
    double dropoutProb = 0.0;
    /** P(reading is scaled by outlierScale) — an aliased burst. */
    double outlierProb = 0.0;
    /** Multiplier applied by an outlier fault. */
    double outlierScale = 10.0;
    /** P(reading repeats the previous emitted reading) — a stale
     *  cache / stuck register. The first reading cannot be stale. */
    double staleProb = 0.0;

    /** @return True iff any fault class can fire. */
    bool enabled() const
    {
        return nanProb > 0.0 || infProb > 0.0 || dropoutProb > 0.0 ||
               outlierProb > 0.0 || staleProb > 0.0;
    }

    /** @return The all-zero scenario (wrapping becomes identity). */
    static FaultScenario none() { return FaultScenario{}; }
};

/**
 * Applies a FaultScenario to a stream of readings.
 *
 * Deterministic: the corrupted stream is a pure function of the
 * scenario seed and the clean reading sequence. Exactly one uniform
 * draw is consumed per reading, so which faults fire never shifts
 * the alignment of later ones.
 */
class FaultInjector
{
  public:
    /** @param scenario The fault mix to inject. */
    explicit FaultInjector(const FaultScenario &scenario);

    /**
     * Pass one clean reading through the fault model.
     *
     * @param clean The true (noisy but valid) reading.
     * @return The possibly corrupted reading.
     */
    double corrupt(double clean);

    /** @return Readings processed so far. */
    std::size_t readings() const { return readings_; }

    /** @return Readings that were corrupted. */
    std::size_t faultsInjected() const { return faults_; }

  private:
    FaultScenario scenario_;
    stats::Rng rng_;
    double last_ = 0.0;
    bool have_last_ = false;
    std::size_t readings_ = 0;
    std::size_t faults_ = 0;
};

/**
 * A PowerMeter whose readings pass through a FaultInjector.
 *
 * With FaultScenario::none() the wrapper is bitwise identical to the
 * inner meter (same noise stream, same values).
 */
class FaultyPowerMeter : public telemetry::PowerMeter
{
  public:
    /**
     * @param inner    The real meter (borrowed).
     * @param scenario Faults to inject into its readings.
     */
    FaultyPowerMeter(const telemetry::PowerMeter &inner,
                     const FaultScenario &scenario);

    double read(const workloads::ApplicationBehavior &model,
                const platform::ResourceAssignment &ra,
                stats::Rng &rng) const override;

    double intervalSeconds() const override
    {
        return inner_.intervalSeconds();
    }

    /** @return The injector (fault counters). */
    const FaultInjector &injector() const { return injector_; }

  private:
    const telemetry::PowerMeter &inner_;
    /** Mutable: read() is const on meters, but the fault stream (its
     *  Rng and the stale-repeat memory) advances per reading. */
    mutable FaultInjector injector_;
};

/**
 * A HeartbeatMonitor whose rate windows pass through a FaultInjector.
 */
class FaultyHeartbeatMonitor : public telemetry::HeartbeatMonitor
{
  public:
    /**
     * @param inner    The real monitor (borrowed).
     * @param scenario Faults to inject into its windows.
     */
    FaultyHeartbeatMonitor(const telemetry::HeartbeatMonitor &inner,
                           const FaultScenario &scenario);

    double measureRate(const workloads::ApplicationBehavior &model,
                       const platform::ResourceAssignment &ra,
                       stats::Rng &rng) const override;

    /** @return The injector (fault counters). */
    const FaultInjector &injector() const { return injector_; }

  private:
    const telemetry::HeartbeatMonitor &inner_;
    mutable FaultInjector injector_;
};

} // namespace leo::faults

#endif // LEO_FAULTS_FAULTS_HH
