/**
 * @file
 * The top-level LEO facade.
 *
 * One object tying the substrates together the way the paper's
 * runtime does: a machine and its configuration space, an offline
 * profile database, the hierarchical Bayesian estimator, and the
 * hull-walking energy minimizer. Downstream users who just want
 * "observe a little, estimate everything, minimize energy" start
 * here; each piece remains individually usable.
 */

#ifndef LEO_CORE_LEO_SYSTEM_HH
#define LEO_CORE_LEO_SYSTEM_HH

#include <memory>

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "runtime/controller.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"

namespace leo::core
{

/** Construction options for the facade. */
struct LeoSystemOptions
{
    /** Observations taken of a new application (paper: 20). */
    std::size_t sampleBudget = 20;
    /** Estimator tunables. */
    estimators::LeoOptions estimator;
    /** Seed for sampling and measurement noise. */
    std::uint64_t seed = 0x1e0ULL;
};

/**
 * The assembled LEO system.
 */
class LeoSystem
{
  public:
    /**
     * Build from explicit parts.
     *
     * @param machine Machine model (copied).
     * @param space   Configuration space (copied).
     * @param prior   Offline profile database (copied).
     * @param options Tunables.
     */
    LeoSystem(platform::Machine machine, platform::ConfigSpace space,
              telemetry::ProfileStore prior,
              LeoSystemOptions options = LeoSystemOptions{});

    /**
     * Convenience constructor reproducing the paper's setup: the
     * dual-Xeon machine, the full 1024-configuration space, and an
     * offline database collected from the 25-benchmark suite
     * (excluding nothing; use prior().without(name) for
     * leave-one-out studies).
     */
    static LeoSystem withStandardSuite(
        LeoSystemOptions options = LeoSystemOptions{});

    /** @return The machine model. */
    const platform::Machine &machine() const { return machine_; }
    /** @return The configuration space. */
    const platform::ConfigSpace &space() const { return space_; }
    /** @return The offline profile database. */
    const telemetry::ProfileStore &prior() const { return prior_; }
    /** @return The options. */
    const LeoSystemOptions &options() const { return options_; }

    /**
     * Sample a (simulated) target application with the configured
     * budget and random policy — the online measurement step.
     *
     * @param target The application to observe.
     * @param rng    Randomness source.
     */
    telemetry::Observations observe(
        const workloads::ApplicationBehavior &target,
        stats::Rng &rng) const;

    /**
     * Estimate performance and power in every configuration from a
     * set of observations, using the hierarchical Bayesian model and
     * this system's offline database.
     *
     * @param obs Observations of the target (from observe() or real
     *            measurements).
     * @param exclude Name of a prior application to leave out (e.g.
     *            the target itself in evaluation), empty for none.
     */
    estimators::Estimate estimate(const telemetry::Observations &obs,
                                  const std::string &exclude = "") const;

    /**
     * Plan the minimal-energy schedule for a constraint from an
     * estimate (Equation 1 via the hull walk).
     */
    optimizer::Schedule minimizeEnergy(
        const estimators::Estimate &estimate,
        const optimizer::PerformanceConstraint &constraint) const;

    /**
     * Build a closed-loop controller for a performance demand, wired
     * to this system's estimator and prior database.
     *
     * @param target_rate Demand in heartbeats/s.
     */
    runtime::EnergyController makeController(double target_rate) const;

    /** @return The underlying LEO estimator. */
    const estimators::LeoEstimator &leoEstimator() const
    {
        return leo_;
    }

  private:
    platform::Machine machine_;
    platform::ConfigSpace space_;
    telemetry::ProfileStore prior_;
    LeoSystemOptions options_;
    estimators::LeoEstimator leo_;
};

} // namespace leo::core

#endif // LEO_CORE_LEO_SYSTEM_HH
