/**
 * @file
 * Implementation of the LEO facade.
 */

#include "core/leo_system.hh"

#include "linalg/error.hh"
#include "workloads/suite.hh"

namespace leo::core
{

LeoSystem::LeoSystem(platform::Machine machine,
                     platform::ConfigSpace space,
                     telemetry::ProfileStore prior,
                     LeoSystemOptions options)
    : machine_(std::move(machine)), space_(std::move(space)),
      prior_(std::move(prior)), options_(options),
      leo_(options.estimator)
{
    require(prior_.numApplications() == 0 ||
                prior_.spaceSize() == space_.size(),
            "LeoSystem: prior database does not match the space");
}

LeoSystem
LeoSystem::withStandardSuite(LeoSystemOptions options)
{
    platform::Machine machine;
    platform::ConfigSpace space =
        platform::ConfigSpace::fullFactorial(machine);
    stats::Rng rng(options.seed);
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;
    telemetry::ProfileStore prior = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
    return LeoSystem(std::move(machine), std::move(space),
                     std::move(prior), options);
}

telemetry::Observations
LeoSystem::observe(const workloads::ApplicationBehavior &target,
                   stats::Rng &rng) const
{
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;
    const telemetry::Profiler profiler(monitor, meter);
    const telemetry::RandomSampler policy;
    return profiler.sample(target, space_, policy,
                           options_.sampleBudget, rng);
}

estimators::Estimate
LeoSystem::estimate(const telemetry::Observations &obs,
                    const std::string &exclude) const
{
    if (exclude.empty()) {
        const estimators::EstimationInputs inputs{space_, prior_, obs};
        return leo_.estimate(inputs);
    }
    const telemetry::ProfileStore reduced = prior_.without(exclude);
    const estimators::EstimationInputs inputs{space_, reduced, obs};
    return leo_.estimate(inputs);
}

optimizer::Schedule
LeoSystem::minimizeEnergy(
    const estimators::Estimate &estimate,
    const optimizer::PerformanceConstraint &constraint) const
{
    return optimizer::planMinimalEnergy(
        estimate.performance.values, estimate.power.values,
        machine_.spec().idleSystemPowerW, constraint);
}

runtime::EnergyController
LeoSystem::makeController(double target_rate) const
{
    runtime::ControllerOptions copts;
    copts.targetRate = target_rate;
    copts.sampleBudget = options_.sampleBudget;
    copts.idlePower = machine_.spec().idleSystemPowerW;
    return runtime::EnergyController(space_, &leo_, prior_, copts);
}

} // namespace leo::core
