#include "runtime/changepoint.hh"

#include <algorithm>
#include <cmath>

namespace leo::runtime
{

void
ChangePointDetector::configure(const ChangePointOptions &options)
{
    options_ = options;
    if (options_.method == ChangePointMethod::Bayesian) {
        const std::size_t n = options_.maxRunLength + 1;
        runProb_.assign(n, 0.0);
        runCount_.assign(n, 0.0);
        runSum_.assign(n, 0.0);
        scratchProb_.assign(n, 0.0);
        scratchCount_.assign(n, 0.0);
        scratchSum_.assign(n, 0.0);
    }
    reset();
}

void
ChangePointDetector::reset()
{
    windows_ = 0;
    latency_ = 0;
    warmupSum_ = 0.0;
    bias_ = 0.0;
    gPos_ = 0.0;
    gNeg_ = 0.0;
    lastZeroPos_ = 0;
    lastZeroNeg_ = 0;
    if (!runProb_.empty()) {
        std::fill(runProb_.begin(), runProb_.end(), 0.0);
        std::fill(runCount_.begin(), runCount_.end(), 0.0);
        std::fill(runSum_.begin(), runSum_.end(), 0.0);
        runProb_[0] = 1.0; // All mass on "the run just started".
    }
}

bool
ChangePointDetector::observe(double residual)
{
    if (!std::isfinite(residual))
        return false; // Faulted telemetry is not phase evidence.
    ++windows_;
    if (windows_ <= options_.warmupWindows) {
        // Warmup estimates the fit's persistent bias at the paced
        // configuration; scoring starts once it is pinned down.
        warmupSum_ += residual;
        if (windows_ == options_.warmupWindows)
            bias_ = warmupSum_ /
                    static_cast<double>(options_.warmupWindows);
        return false;
    }
    const double centered = residual - bias_;
    return options_.method == ChangePointMethod::Cusum
               ? observeCusum(centered)
               : observeBayes(centered);
}

bool
ChangePointDetector::observeCusum(double residual)
{
    const double k = options_.cusumDrift;
    gPos_ = std::max(0.0, gPos_ + residual - k);
    gNeg_ = std::max(0.0, gNeg_ - residual - k);
    if (gPos_ == 0.0)
        lastZeroPos_ = windows_;
    if (gNeg_ == 0.0)
        lastZeroNeg_ = windows_;
    const double h = options_.cusumThreshold;
    if (gPos_ <= h && gNeg_ <= h)
        return false;
    // The change plausibly began where the firing side left zero.
    const std::size_t onset =
        gPos_ > h ? lastZeroPos_ : lastZeroNeg_;
    latency_ = windows_ > onset ? windows_ - onset : 1;
    return true;
}

bool
ChangePointDetector::observeBayes(double residual)
{
    // Conjugate normal model on standardized residuals: unit
    // observation variance, N(0, 1) prior on the segment mean. For a
    // run with n observations summing to s the posterior mean is
    // s / (n + 1) and the predictive is N(s/(n+1), 1 + 1/(n+1)).
    const std::size_t cap = options_.maxRunLength;
    const double hazard = options_.hazard;
    double changeMass = 0.0;
    std::fill(scratchProb_.begin(), scratchProb_.end(), 0.0);
    std::fill(scratchCount_.begin(), scratchCount_.end(), 0.0);
    std::fill(scratchSum_.begin(), scratchSum_.end(), 0.0);
    for (std::size_t r = 0; r <= cap; ++r) {
        const double p = runProb_[r];
        if (p <= 0.0)
            continue;
        const double n = runCount_[r];
        const double mean = runSum_[r] / (n + 1.0);
        const double var = 1.0 + 1.0 / (n + 1.0);
        const double z = residual - mean;
        const double like =
            std::exp(-0.5 * z * z / var) / std::sqrt(var);
        const double joint = p * like;
        changeMass += joint * hazard;
        const std::size_t grown = std::min(r + 1, cap);
        scratchProb_[grown] += joint * (1.0 - hazard);
        scratchCount_[grown] += joint * (1.0 - hazard) * (n + 1.0);
        scratchSum_[grown] +=
            joint * (1.0 - hazard) * (runSum_[r] + residual);
    }
    scratchProb_[0] += changeMass;
    double total = 0.0;
    for (std::size_t r = 0; r <= cap; ++r)
        total += scratchProb_[r];
    if (total <= 0.0 || !std::isfinite(total)) {
        // Numerical wipeout (all likelihoods underflowed: the
        // residual is wildly out of model). That *is* a change.
        reset();
        latency_ = 1;
        return true;
    }
    for (std::size_t r = 0; r <= cap; ++r) {
        runProb_[r] = scratchProb_[r] / total;
        if (scratchProb_[r] > 0.0) {
            runCount_[r] = scratchCount_[r] / scratchProb_[r];
            runSum_[r] = scratchSum_[r] / scratchProb_[r];
        } else {
            runCount_[r] = 0.0;
            runSum_[r] = 0.0;
        }
    }
    const std::size_t shortRun =
        std::min(options_.shortRunWindows, cap);
    double shortMass = 0.0;
    for (std::size_t r = 0; r <= shortRun; ++r)
        shortMass += runProb_[r];
    // Ignore the startup transient where the run is short because the
    // detector just started, not because a change happened.
    if (windows_ <= options_.warmupWindows + shortRun + 1)
        return false;
    if (shortMass < options_.detectProbability)
        return false;
    std::size_t map = 0;
    for (std::size_t r = 1; r <= shortRun; ++r)
        if (runProb_[r] > runProb_[map])
            map = r;
    latency_ = std::max<std::size_t>(map, 1);
    return true;
}

void
ChangePointDetector::save(linalg::ByteWriter &w) const
{
    w.u64(windows_);
    w.u64(latency_);
    w.f64(warmupSum_);
    w.f64(bias_);
    w.f64(gPos_);
    w.f64(gNeg_);
    w.u64(lastZeroPos_);
    w.u64(lastZeroNeg_);
    w.u64(runProb_.size());
    for (std::size_t r = 0; r < runProb_.size(); ++r) {
        w.f64(runProb_[r]);
        w.f64(runCount_[r]);
        w.f64(runSum_[r]);
    }
}

bool
ChangePointDetector::restore(linalg::ByteReader &r)
{
    windows_ = static_cast<std::size_t>(r.u64());
    latency_ = static_cast<std::size_t>(r.u64());
    warmupSum_ = r.f64();
    bias_ = r.f64();
    gPos_ = r.f64();
    gNeg_ = r.f64();
    lastZeroPos_ = static_cast<std::size_t>(r.u64());
    lastZeroNeg_ = static_cast<std::size_t>(r.u64());
    const std::size_t n = static_cast<std::size_t>(r.u64());
    if (n != runProb_.size() || !r.ok()) {
        // Method/size mismatch against the configured detector.
        for (std::size_t i = 0; i < n && r.ok(); ++i) {
            (void)r.f64();
            (void)r.f64();
            (void)r.f64();
        }
        reset();
        return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
        runProb_[i] = r.f64();
        runCount_[i] = r.f64();
        runSum_[i] = r.f64();
    }
    if (!r.ok()) {
        reset();
        return false;
    }
    return true;
}

std::vector<double>
changePointLatencyBuckets()
{
    return {1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0};
}

} // namespace leo::runtime
