/**
 * @file
 * The online energy controller.
 *
 * Ties the pieces into the runtime of Section 6.6: sample a few
 * configurations while the application runs, fit an estimator, pace at the
 * cheapest Pareto-frontier configuration that meets the performance
 * demand (idling the intra-window slack), then watch the heartbeats. A sustained gap between measured
 * and predicted behaviour signals a phase change; the controller
 * re-samples and re-estimates. A gradient-ascent guard nudges the
 * operating point up the hull whenever the measured rate falls short
 * of the demand ("all approaches use gradient ascent to increase
 * performance until the demand is met").
 */

#ifndef LEO_RUNTIME_CONTROLLER_HH
#define LEO_RUNTIME_CONTROLLER_HH

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "estimators/estimator.hh"
#include "estimators/leo.hh"
#include "linalg/serialize.hh"
#include "linalg/workspace.hh"
#include "obs/obs.hh"
#include "optimizer/pareto.hh"
#include "runtime/changepoint.hh"
#include "runtime/incremental.hh"
#include "stats/rng.hh"
#include "telemetry/measurement.hh"

namespace leo::runtime
{

/** Tunables of the control loop. */
struct ControllerOptions
{
    /** Performance demand in heartbeats/s. */
    double targetRate = 1.0;
    /** Configurations sampled when (re)estimating. */
    std::size_t sampleBudget = 20;
    /** Relative gap between a measurement and the same
     *  configuration's own measurement history that counts as drift.
     *  Comparing against history (not the model) separates phase
     *  changes from static estimation error: a merely-misestimated
     *  configuration measures consistently, while a phase change
     *  moves the measurement away from its own past. */
    double driftThreshold = 0.20;
    /** Consecutive drifting windows before re-estimation. */
    std::size_t driftWindow = 3;
    /** Idle system power (intra-window slack), Watts. */
    double idlePower = 85.0;
    /** Windows to ride a fallback estimate after a failed fit before
     *  retrying estimation with fresh probes (0 = never retry; see
     *  DESIGN.md "Failure model and degradation policy"). */
    std::size_t fallbackBackoffWindows = 8;
    /**
     * Per-window estimate refresh between full fits (see
     * runtime/incremental.hh). Requires the estimator to be a
     * LeoEstimator producing low-rank fits; otherwise ignored. None
     * keeps the historical fit-once-then-watch behavior.
     */
    RefitMode refitMode = RefitMode::None;
    /**
     * Sliding window of online samples the refitter conditions on;
     * samples beyond it are evicted oldest-first (0 = keep all).
     */
    std::size_t onlineSampleWindow = 32;
    /**
     * Covariance representation for LEO (re)fits. Auto lets each fit
     * pick the factored path when the rank bound leaves headroom
     * (4 (M + |Omega| + 1) <= n) and the bitwise-stable dense path
     * otherwise — on the small spaces the historical tests run, Auto
     * resolves to Dense and schedules are unchanged. An estimator
     * constructed with an explicit non-Dense representation keeps it
     * (see fitRepresentation()); this knob only replaces the
     * estimator's Dense default.
     */
    estimators::CovarianceRep representation =
        estimators::CovarianceRep::Auto;
    /**
     * Phase-change reaction policy (runtime/changepoint.hh). Off
     * keeps the legacy EWMA-history drift trigger and is bitwise
     * identical to pre-detector behavior. ColdRefit / PriorReset
     * replace that trigger with an online change-point detector
     * scoring standardized residuals against the current fit's
     * predictive distribution: detection re-samples immediately —
     * discarding the warm fits (ColdRefit) or keeping them as the EM
     * anchor (PriorReset) — instead of waiting out the fixed window.
     */
    ChangePointPolicy changePointPolicy = ChangePointPolicy::Off;
    /** Detector tunables (used when changePointPolicy != Off). */
    ChangePointOptions changePoint;
    /**
     * When true, a completed probe plan parks the controller in
     * fitPending() instead of fitting inline: an external owner (the
     * multi-tenant service) collects the observation set, runs the
     * fit in a shared batch, and hands the result back through
     * applyExternalFit(). False keeps the self-contained inline fit.
     */
    bool deferFits = false;
};

/**
 * State machine: Sampling (collecting observations) -> Controlling
 * (pacing on the frontier) -> back to Sampling on drift.
 */
class EnergyController
{
  public:
    /** Operating mode. */
    enum class State
    {
        Sampling,    //!< Collecting observations of the target.
        Controlling  //!< Pacing the demand from estimates.
    };

    /**
     * @param space     The configuration space.
     * @param estimator The estimation approach (borrowed); pass
     *                  nullptr for an oracle-fed controller whose
     *                  estimates are injected via setEstimates().
     * @param prior     Offline profiles (borrowed).
     * @param options   Control knobs.
     */
    EnergyController(const platform::ConfigSpace &space,
                     const estimators::Estimator *estimator,
                     const telemetry::ProfileStore &prior,
                     ControllerOptions options);

    /** @return Current state. */
    State state() const { return state_; }

    /** @return The options in use. */
    const ControllerOptions &options() const { return options_; }

    /**
     * Configuration to run the next window in. In Sampling state this
     * is the next probe configuration; in Controlling state it is the
     * frontier configuration pacing the demand.
     *
     * @param rng Randomness for probe selection.
     */
    std::size_t nextConfig(stats::Rng &rng);

    /**
     * Report the measurement of the window that just ran.
     *
     * In Sampling state the sample is added to the observation set
     * and — once the budget is reached — the estimator is fitted and
     * the controller switches to Controlling. In Controlling state
     * the sample feeds drift detection and the gradient-ascent guard.
     *
     * Robustness: a sample with a non-finite or non-positive rate or
     * power (a faulted reading) is rejected — counted in
     * samplesRejected() — without advancing the probe plan, so the
     * same configuration is re-probed next window. A sample for a
     * configuration other than the pending probe is treated as
     * out-of-band telemetry: it updates the measurement history but
     * never enters the fit's observation set.
     *
     * @param s The measured sample (config should match nextConfig()).
     */
    void recordMeasurement(const telemetry::Sample &s);

    /** Inject estimates directly (oracle / tests). */
    void setEstimates(linalg::Vector performance,
                      linalg::Vector power);

    /**
     * True iff the probe plan completed under options().deferFits and
     * the controller is waiting for applyExternalFit(). While
     * pending, nextConfig() keeps returning the last probe
     * configuration (re-measuring it is harmless out-of-band
     * telemetry).
     */
    bool fitPending() const { return fit_pending_; }

    /** @return The observation set a deferred fit must run on. */
    const telemetry::Observations &observations() const
    {
        return observations_;
    }

    /** @return Warm-start fit for a deferred performance fit (null
     *  until a first fit completed), valid until the next fit. */
    const estimators::LeoFit *warmPerfFit() const
    {
        return have_fits_ ? &perf_fit_ : nullptr;
    }

    /** @return Warm-start fit for a deferred power fit. */
    const estimators::LeoFit *warmPowerFit() const
    {
        return have_fits_ ? &power_fit_ : nullptr;
    }

    /**
     * The covariance representation LEO (re)fits dispatch on: the
     * estimator's own non-Dense opt-in when present, else
     * options().representation. Service callers pass this to their
     * batched fits (and into the fit-cache key) so an external fit
     * is bitwise identical to the inline one.
     */
    estimators::CovarianceRep fitRepresentation() const;

    /**
     * Complete a deferred fit: install externally computed estimates
     * and warm fits, then replan and switch to Controlling — the
     * exact sequence the inline fit runs, so a deferred fit computed
     * with the same inputs (observations(), warm fits,
     * fitRepresentation()) yields a bitwise-identical schedule.
     * Estimates that come back unusable (wrong size or non-finite)
     * engage the same degradation policy as an inline fit failure.
     * Never throws.
     *
     * @param perf      Performance estimate from the external fit.
     * @param power     Power estimate from the external fit.
     * @param perf_fit  Full performance fit (warm state for next time).
     * @param power_fit Full power fit.
     */
    void applyExternalFit(estimators::MetricEstimate perf,
                          estimators::MetricEstimate power,
                          estimators::LeoFit perf_fit,
                          estimators::LeoFit power_fit);

    /**
     * Serialize the complete control state — observations, probe
     * plan, estimates, warm fits, refitters, drift/boost bookkeeping
     * and degradation counters — so a controller constructed with the
     * same space, estimator, prior and options can resume the run bit
     * for bit (see restoreState()).
     */
    void saveState(linalg::ByteWriter &w) const;

    /**
     * Restore state written by saveState(). The controller must have
     * been constructed with the same configuration space (validated),
     * estimator kind and options as the saved one — the blob carries
     * runtime state, not construction parameters. Never throws; on a
     * truncated or mismatched blob the controller resets to fresh
     * Sampling state and returns false.
     */
    bool restoreState(linalg::ByteReader &r);

    /** @return Current estimates (empty before the first fit). */
    const linalg::Vector &performanceEstimate() const
    {
        return perf_;
    }
    /** @return Current power estimates. */
    const linalg::Vector &powerEstimate() const { return power_; }

    /** @return Number of re-estimations triggered by drift. */
    std::size_t reestimations() const { return reestimations_; }

    /** @return True once at least one fit has happened. */
    bool hasEstimates() const { return !perf_.empty(); }

    /** @return Fits that failed (threw or went non-finite) and fell
     *  back to the degradation policy. */
    std::size_t fitsFailed() const
    {
        return static_cast<std::size_t>(fits_failed_.value());
    }

    /** @return Measurements rejected as unusable (non-finite or
     *  non-positive readings), plus observations the estimator's own
     *  sanitization dropped. */
    std::size_t samplesRejected() const
    {
        return static_cast<std::size_t>(samples_rejected_.value());
    }

    /** @return Windows spent controlling on fallback estimates. */
    std::size_t fallbackWindows() const
    {
        return static_cast<std::size_t>(fallback_windows_.value());
    }

    /** @return Change-points detected (0 with the policy Off). */
    std::size_t changePointsDetected() const
    {
        return static_cast<std::size_t>(
            changepoints_detected_.value());
    }

    /**
     * This controller's private metrics registry. The degradation
     * counters above live here (each controller counts its own
     * events, independent of every other instance and of
     * obs::Registry::global()); snapshot it for a health report.
     */
    const obs::Registry &metrics() const { return obs_; }

  private:
    /** Fit the estimator from the current observations; never
     *  throws — a failed fit engages the fallback policy. */
    void fit();

    /** The raw estimator call (may throw). */
    void fitUnguarded();

    /** Degradation policy after a failed fit: prior-mean estimates
     *  when a prior exists, race-to-idle otherwise; arms the
     *  backoff-then-retry timer. */
    void fallbackEstimates();

    /** Reset sampling state so fresh probes are drawn. */
    void beginSampling();

    /** Recompute the frontier and locate the demand on it. */
    void replan();

    /**
     * replan() minus the guard resets: recomputes the frontier and
     * segment from refreshed estimates while preserving the
     * gradient-ascent boost, the measured-rate EWMA and the drift
     * counter — a refit refreshes the map, it does not declare a
     * phase change.
     */
    void replanPreserving();

    /** Arm the per-window refitters from the latest low-rank fits
     *  (no-op unless options_.refitMode asks for them). */
    void seedRefits();

    /** Select the frontier configuration pacing the demand. */
    std::size_t paceConfig();

    /** Predictive sigma for one configuration's residual, floored at
     *  changePoint.minRelativeSigma of the prediction. */
    double predictiveSigma(const estimators::LeoFit &fit,
                           std::size_t config,
                           double predicted) const;

    /** Feed the change-point detectors with this window's residuals;
     *  true when either alarms (never throws). */
    bool changePointFired(const telemetry::Sample &s,
                          std::size_t *latency);

    const platform::ConfigSpace &space_;
    const estimators::Estimator *estimator_; // leo-lint: allow(snapshot-completeness) borrowed dependency, rebound on construction
    const telemetry::ProfileStore &prior_; // leo-lint: allow(snapshot-completeness) borrowed dependency, rebound on construction
    ControllerOptions options_;

    State state_ = State::Sampling;
    telemetry::Observations observations_;
    std::vector<std::size_t> probe_plan_;
    std::size_t probe_next_ = 0;

    linalg::Vector perf_;
    linalg::Vector power_;
    /** Scratch arena reused across LEO (re)fits. */
    linalg::Workspace fit_ws_; // leo-lint: allow(snapshot-completeness) fit scratch workspace
    /** Previous LEO fits: drift-triggered re-estimations warm-start
     *  EM from these instead of the cold init. */
    estimators::LeoFit perf_fit_;
    estimators::LeoFit power_fit_;
    bool have_fits_ = false;
    /** Frozen-theta per-window refitters (inactive unless
     *  options_.refitMode engages them). */
    IncrementalRefit refit_perf_;
    IncrementalRefit refit_power_;
    /** Per-configuration EWMA of measured rates (drift reference). */
    std::unordered_map<std::size_t, double> history_;
    std::vector<optimizer::TradeoffPoint> frontier_;
    std::size_t segment_ = 0;  //!< Frontier segment at the target.
    std::size_t boost_ = 0;    //!< Gradient-ascent offset upward.
    double avg_rate_ = 0.0;    //!< EWMA of measured rate.
    bool have_avg_ = false;
    std::size_t drift_count_ = 0;
    /** Consecutive starved windows (change-point policies only; see
     *  ChangePointOptions::starveWindows). */
    std::size_t starve_count_ = 0;
    std::size_t reestimations_ = 0;
    std::size_t pending_config_ = 0;
    /** Probe plan complete, external fit not yet applied (deferFits). */
    bool fit_pending_ = false;
    /** Instance-local registry backing the degradation counters (must
     *  precede the handles below — they bind to it at construction). */
    obs::Registry obs_; // leo-lint: allow(snapshot-completeness) process-local metrics
    obs::Counter fits_failed_ =
        obs_.counter(obs::names::kControllerFitsFailed);
    obs::Counter samples_rejected_ =
        obs_.counter(obs::names::kControllerSamplesRejected);
    obs::Counter fallback_windows_ =
        obs_.counter(obs::names::kControllerWindowsFallback);
    obs::Counter changepoints_detected_ =
        obs_.counter(obs::names::kControllerChangepointsDetected);
    obs::Histogram changepoint_latency_ = obs_.histogram( // leo-lint: allow(snapshot-completeness) process-local metric
        obs::names::kControllerChangepointLatency,
        changePointLatencyBuckets());
    /** Online change-point detectors over heartbeat / power
     *  residuals (idle unless options_.changePointPolicy engages
     *  them). */
    ChangePointDetector cp_perf_;
    ChangePointDetector cp_power_;
    /** Windows left before a fallback triggers fresh probes. */
    std::size_t fallback_remaining_ = 0;
};

} // namespace leo::runtime

#endif // LEO_RUNTIME_CONTROLLER_HH
