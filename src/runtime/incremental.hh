/**
 * @file
 * Incremental per-window refits for the online controller.
 *
 * Between full EM re-estimations the controller keeps measuring: one
 * (configuration, value) sample arrives per control window. A full
 * fitMetric per window is wasteful — the fitted theta barely moves —
 * so this module freezes theta from the last low-rank LeoFit and
 * folds each new sample into the *conditioning* step only:
 *
 *     mean = mu + Sigma_Omega (Sigma_{Omega,Omega} + sigma^2 I)^-1 r
 *
 * The low-rank fit carries Sigma = alpha I + Q' C Q. C alone is NOT
 * positive definite in general (only alpha I + Q' C Q is: C's
 * spectrum reaches down to -alpha), so the conditioner works with the
 * projected covariance B = C + alpha I, which is PSD, and models
 * Sigma ~= Q' B Q — the isotropic floor absorbed into the basis, an
 * O(alpha) approximation off-basis. With B = F F' (Cholesky) the
 * Woodbury identity turns the growing s x s observation system into a
 * fixed q x q one:
 *
 *     K = d I_q + sum_t u_t u_t',   u_t = F' Q e_{idx_t},
 *     d = sigma^2,
 *
 * and each arriving sample is a rank-1 *update* of K's Cholesky
 * factor (O(q^2)), each sample sliding out of the window a rank-1
 * *downdate* — never a refactorization. A downdate that reports
 * NotPositiveDefinite (possible near singularity) triggers a full
 * O(q^3) rebuild of the factor from the surviving window, so the
 * refitter degrades to correct-but-slower instead of failing.
 * Derivation and the update/downdate algorithm: DESIGN.md
 * section 7.2.
 */

#ifndef LEO_RUNTIME_INCREMENTAL_HH
#define LEO_RUNTIME_INCREMENTAL_HH

#include <cstddef>
#include <vector>

#include "estimators/leo.hh"
#include "linalg/cholesky.hh"
#include "linalg/matrix.hh"
#include "linalg/serialize.hh"
#include "linalg/vector.hh"

namespace leo::runtime
{

/** How the controller refreshes estimates between full EM fits. */
enum class RefitMode
{
    None,        //!< No per-window refresh (historical behavior).
    Batch,       //!< Rebuild the observation system from scratch
                 //!< every window (the executable specification).
    Incremental  //!< Rank-1 Cholesky up/downdates per window.
};

/**
 * Frozen-theta conditioner fed one online sample per control window.
 *
 * Batch and Incremental modes maintain the same K factor through
 * different algebra (refactorization vs rank-1 rotations) and agree
 * to rounding; the property suite asserts the controller makes
 * identical decisions under either. All entry points are no-throw in
 * practice: reset() rejects unusable fits by returning false, and
 * numerical trouble downgrades to a rebuild, never an exception.
 */
class IncrementalRefit
{
  public:
    /**
     * Freeze theta from a completed low-rank fit and clear the
     * sample window.
     *
     * @param fit    A LeoFit with lowRank set (dense fits are
     *               rejected: the whole point is never touching an
     *               n x n matrix online).
     * @param window Sliding-window length; samples beyond it are
     *               evicted oldest-first. 0 keeps every sample.
     * @param mode   Batch or Incremental (None deactivates).
     * @return True iff the refitter is now active.
     */
    bool reset(const estimators::LeoFit &fit, std::size_t window,
               RefitMode mode);

    /** Drop the frozen theta; predictInto becomes unavailable. */
    void deactivate() { active_ = false; entries_.clear(); }

    /** @return True iff reset() accepted a fit. */
    bool active() const { return active_; }

    /** @return Samples currently in the window. */
    std::size_t size() const { return entries_.size(); }

    /** @return Full factor rebuilds forced by failed downdates. */
    std::size_t rebuilds() const { return rebuilds_; }

    /**
     * Fold one raw-unit observation into the window.
     *
     * @param index Configuration index of the measurement.
     * @param value Measured value (raw units; the fit's scale anchor
     *              normalizes internally).
     * @return False iff the refitter is inactive or the sample is
     *         unusable (non-finite, index out of range).
     */
    bool addSample(std::size_t index, double value);

    /**
     * Write the conditioned prediction (raw units, clamped at zero)
     * for every configuration into `out`.
     *
     * @return False iff inactive (out untouched).
     */
    bool predictInto(linalg::Vector &out) const;

    /**
     * Serialize the full refitter state — frozen theta, sample
     * window, and the *exact* K factor the rank-1 update sequence
     * arrived at (a refactorization on restore would only match to
     * rounding, breaking the bitwise resume contract).
     */
    void save(linalg::ByteWriter &w) const;

    /**
     * Restore state written by save(). Never throws; a truncated or
     * inconsistent blob deactivates the refitter and returns false
     * (the controller then degrades to fit-once-then-watch, its
     * standard response to refit trouble).
     */
    bool restore(linalg::ByteReader &r);

  private:
    /** One windowed sample: basis loading, normalized residual. */
    struct Entry
    {
        linalg::Vector u;  //!< F' Q e_index (length q).
        double r = 0.0;    //!< value / scale - mu[index].
        std::size_t index = 0;
    };

    /** Refactorize K = d I + sum u u' from the current window. */
    void rebuildFactor();

    /** Downdate-evict samples beyond the window (oldest first). */
    void evictOverflow();

    /** Compute u = F' (column `index` of basisT) into `u`. */
    void loadingAt(linalg::Vector &u, std::size_t index) const;

    bool active_ = false;
    RefitMode mode_ = RefitMode::None;
    std::size_t window_ = 0;
    std::size_t n_ = 0;
    std::size_t q_ = 0;
    double d_ = 0.0;     //!< sigma^2, the observation noise.
    double scale_ = 1.0;
    linalg::Vector mu_;      //!< Normalized-space mean (length n).
    linalg::Matrix basisT_;  //!< Q, q x n.
    linalg::Matrix fmat_;    //!< F = chol(C + alpha I), lower q x q.
    linalg::Cholesky kchol_; //!< Factor of K.
    linalg::Matrix kmat_;    //!< Rebuild scratch.
    std::vector<Entry> entries_;
    std::size_t rebuilds_ = 0;
    // predictInto scratch (mutable: prediction is logically const).
    mutable linalg::Vector t_; // leo-lint: allow(snapshot-completeness) scratch, rebuilt per refit
    mutable linalg::Vector y_; // leo-lint: allow(snapshot-completeness) scratch, rebuilt per refit
    mutable linalg::Vector fy_; // leo-lint: allow(snapshot-completeness) scratch, rebuilt per refit
};

} // namespace leo::runtime

#endif // LEO_RUNTIME_INCREMENTAL_HH
