/**
 * @file
 * Implementation of the incremental per-window refitter.
 */

#include "runtime/incremental.hh"

#include <algorithm>
#include <cmath>

#include "obs/obs.hh"

namespace leo::runtime
{

namespace
{

/** Registry instruments of the refitter (lazily registered). */
struct RefitObs
{
    obs::Counter applied =
        obs::Registry::global().counter(obs::names::kRefitSamplesApplied);
    obs::Counter evicted =
        obs::Registry::global().counter(obs::names::kRefitSamplesEvicted);
    obs::Counter downdates_failed = obs::Registry::global().counter(
        obs::names::kRefitDowndatesFailed);
    obs::Counter rebuilds =
        obs::Registry::global().counter(obs::names::kRefitRebuildsRun);
};

RefitObs &
refitObs()
{
    static RefitObs o;
    return o;
}

} // namespace

bool
IncrementalRefit::reset(const estimators::LeoFit &fit,
                        std::size_t window, RefitMode mode)
{
    active_ = false;
    entries_.clear();
    if (mode == RefitMode::None)
        return false;
    const std::size_t q = fit.basisT.rows();
    const std::size_t n = fit.basisT.cols();
    if (!fit.lowRank || q == 0 || n == 0 || fit.coeff.rows() != q ||
        fit.coeff.cols() != q || fit.mu.size() != n ||
        !(fit.alphaDiag > 0.0) || !(fit.sigma2 > 0.0) ||
        !(fit.scale > 0.0) || !fit.mu.allFinite() ||
        !fit.basisT.allFinite() || !fit.coeff.allFinite())
        return false;
    // F = chol(B) with B = C + alpha I. C itself is indefinite in
    // general — Sigma = alpha I + Q' C Q only bounds C's spectrum at
    // -alpha — but B is PSD on theory; the jitter schedule covers the
    // floating-point boundary. A fit whose B still refuses to factor
    // is rejected (factorize throws; the caller's guard catches).
    linalg::Matrix b = fit.coeff;
    b.addToDiagonal(fit.alphaDiag);
    linalg::Cholesky fchol;
    try {
        fchol.factorize(b, 0.0, 1e-6);
    } catch (const std::exception &) {
        return false;
    }
    if (!fchol.factor().allFinite())
        return false;

    mode_ = mode;
    window_ = window;
    n_ = n;
    q_ = q;
    d_ = fit.sigma2;
    scale_ = fit.scale;
    mu_ = fit.mu;
    basisT_ = fit.basisT;
    fmat_ = fchol.factor();
    kchol_.reserve(q_);
    kmat_.resize(q_, q_);
    rebuilds_ = 0;
    rebuildFactor();
    active_ = true;
    return true;
}

void
IncrementalRefit::loadingAt(linalg::Vector &u, std::size_t index) const
{
    // u = F' p with p = column `index` of basisT: u[k] =
    // sum_{j >= k} F(j, k) Q(j, index) (F is lower triangular).
    u.resize(q_);
    for (std::size_t k = 0; k < q_; ++k) {
        double acc = 0.0;
        for (std::size_t j = k; j < q_; ++j)
            acc += fmat_.at(j, k) * basisT_.at(j, index);
        u[k] = acc;
    }
}

void
IncrementalRefit::rebuildFactor()
{
    kmat_.fill(0.0);
    kmat_.addToDiagonal(d_);
    for (const Entry &e : entries_)
        kmat_.outerAddInto(1.0, e.u, e.u);
    kchol_.factorize(kmat_, 0.0, 1e-10);
}

bool
IncrementalRefit::addSample(std::size_t index, double value)
{
    if (!active_)
        return false;
    if (index >= n_ || !std::isfinite(value) || value < 0.0)
        return false;
    RefitObs &ro = refitObs();

    Entry e;
    e.index = index;
    e.r = value / scale_ - mu_[index];

    // A repeat sample of a configuration already in the window
    // replaces its predecessor: a fresher reading of the same
    // configuration, with the identical loading u, so K is untouched
    // and no factor work is needed. It also keeps the window
    // distinct-by-configuration, so repeated measurements never get
    // over-weighted as if they were independent.
    for (std::size_t t = 0; t < entries_.size(); ++t) {
        if (entries_[t].index != index)
            continue;
        Entry fresh = std::move(entries_[t]);
        fresh.r = e.r;
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(t));
        entries_.push_back(std::move(fresh));
        ro.applied.add(1);
        if (mode_ == RefitMode::Batch)
            rebuildFactor();
        return true;
    }
    loadingAt(e.u, index);

    if (mode_ == RefitMode::Incremental) {
        const bool updated =
            kchol_.updateRank1(e.u) == linalg::UpdateStatus::Ok;
        entries_.push_back(std::move(e));
        ro.applied.add(1);
        evictOverflow();
        if (!updated) {
            // Non-finite rotation state; only a rebuild restores a
            // factor consistent with the window.
            ++rebuilds_;
            ro.rebuilds.add(1);
            rebuildFactor();
        }
        return true;
    }

    // Batch mode: the specification. Same window bookkeeping, factor
    // rebuilt from scratch every sample.
    entries_.push_back(std::move(e));
    ro.applied.add(1);
    while (window_ > 0 && entries_.size() > window_) {
        entries_.erase(entries_.begin());
        ro.evicted.add(1);
    }
    rebuildFactor();
    return true;
}

void
IncrementalRefit::evictOverflow()
{
    RefitObs &ro = refitObs();
    while (window_ > 0 && entries_.size() > window_) {
        const linalg::Vector old = std::move(entries_.front().u);
        entries_.erase(entries_.begin());
        ro.evicted.add(1);
        if (kchol_.downdateRank1(old) != linalg::UpdateStatus::Ok) {
            ro.downdates_failed.add(1);
            ++rebuilds_;
            ro.rebuilds.add(1);
            rebuildFactor();
        }
    }
}

void
IncrementalRefit::save(linalg::ByteWriter &w) const
{
    w.u8(active_ ? 1 : 0);
    if (!active_)
        return;
    w.u8(static_cast<std::uint8_t>(mode_));
    w.u64(window_);
    w.u64(n_);
    w.u64(q_);
    w.f64(d_);
    w.f64(scale_);
    w.vec(mu_);
    w.mat(basisT_);
    w.mat(fmat_);
    w.mat(kchol_.factor());
    w.u64(entries_.size());
    for (const Entry &e : entries_) {
        w.vec(e.u);
        w.f64(e.r);
        w.u64(e.index);
    }
    w.u64(rebuilds_);
}

bool
IncrementalRefit::restore(linalg::ByteReader &r)
{
    deactivate();
    if (r.u8() == 0)
        return r.ok();
    const std::uint8_t mode = r.u8();
    window_ = static_cast<std::size_t>(r.u64());
    n_ = static_cast<std::size_t>(r.u64());
    q_ = static_cast<std::size_t>(r.u64());
    d_ = r.f64();
    scale_ = r.f64();
    mu_ = r.vec();
    basisT_ = r.mat();
    fmat_ = r.mat();
    linalg::Matrix kfac = r.mat();
    const std::size_t count = static_cast<std::size_t>(r.u64());
    entries_.clear();
    for (std::size_t i = 0; i < count && r.ok(); ++i) {
        Entry e;
        e.u = r.vec();
        e.r = r.f64();
        e.index = static_cast<std::size_t>(r.u64());
        entries_.push_back(std::move(e));
    }
    rebuilds_ = static_cast<std::size_t>(r.u64());
    if (!r.ok() || mode > static_cast<std::uint8_t>(
                       RefitMode::Incremental) ||
        q_ == 0 || n_ == 0 || mu_.size() != n_ ||
        basisT_.rows() != q_ || basisT_.cols() != n_ ||
        fmat_.rows() != q_ || fmat_.cols() != q_ ||
        kfac.rows() != q_ || kfac.cols() != q_ || !(d_ > 0.0) ||
        !(scale_ > 0.0)) {
        deactivate();
        return false;
    }
    for (const Entry &e : entries_) {
        if (e.u.size() != q_ || e.index >= n_) {
            deactivate();
            return false;
        }
    }
    mode_ = static_cast<RefitMode>(mode);
    kchol_.reserve(q_);
    kchol_.setFactor(std::move(kfac));
    kmat_.resize(q_, q_);
    active_ = true;
    return true;
}

bool
IncrementalRefit::predictInto(linalg::Vector &out) const
{
    if (!active_)
        return false;

    // t = sum_t r_t u_t; y = K^-1 t.
    t_.resize(q_);
    t_.fill(0.0);
    for (const Entry &e : entries_)
        t_.addScaled(e.r, e.u);
    y_ = t_;
    kchol_.solveInPlace(y_);

    // Conditioned mean: mu + Q' B P' A^-1 r collapses to
    // mu + Q' (F y) under the Woodbury substitution.
    fy_.resize(q_);
    for (std::size_t j = 0; j < q_; ++j) {
        double acc = 0.0;
        for (std::size_t k = 0; k <= j; ++k)
            acc += fmat_.at(j, k) * y_[k];
        fy_[j] = acc;
    }
    out = mu_;
    for (std::size_t k = 0; k < q_; ++k) {
        const double c = fy_[k];
        if (c == 0.0)
            continue;
        for (std::size_t j = 0; j < n_; ++j)
            out[j] += c * basisT_.at(k, j);
    }

    for (std::size_t j = 0; j < n_; ++j)
        out[j] = std::max(out[j] * scale_, 0.0);
    return true;
}

} // namespace leo::runtime
