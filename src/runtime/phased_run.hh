/**
 * @file
 * Closed-loop simulation of a phased application under a controller.
 *
 * Reproduces the Section 6.6 experiment: a real-time application
 * (fluidanimate) renders frames at a fixed demand while its workload
 * switches phase midway. Each approach (LEO / Online / Offline /
 * oracle) drives the controller; the simulator accounts true
 * per-frame time and energy, including slack idling within the frame
 * period ("pace to idle") and late frames when the chosen
 * configuration is too slow.
 */

#ifndef LEO_RUNTIME_PHASED_RUN_HH
#define LEO_RUNTIME_PHASED_RUN_HH

#include <vector>

#include "runtime/controller.hh"
#include "telemetry/meters.hh"
#include "telemetry/profile_store.hh"
#include "workloads/phased.hh"

namespace leo::runtime
{

/** Per-frame record of the closed-loop run. */
struct FrameRecord
{
    /** Global frame index. */
    std::size_t frame = 0;
    /** Phase the application was in. */
    std::size_t phase = 0;
    /** Configuration the controller chose. */
    std::size_t configIndex = 0;
    /** True heartbeat rate achieved (frames/s). */
    double rate = 0.0;
    /** True wall power while rendering (Watts). */
    double powerWatts = 0.0;
    /** Energy of the frame period, including slack idle (Joules). */
    double energyJoules = 0.0;
    /** rate / demand: >= 1 means the frame met real-time. */
    double normalizedPerformance = 0.0;
    /** True while the controller was probing configurations. */
    bool sampling = false;
};

/** Result of a closed-loop phased run. */
struct PhasedRunResult
{
    /** The full frame trace. */
    std::vector<FrameRecord> trace;
    /** Energy per phase (Joules). */
    std::vector<double> phaseEnergy;
    /** Total energy (Joules). */
    double totalEnergy = 0.0;
    /** Fraction of frames that met the real-time demand. */
    double deadlineHitRate = 0.0;
    /** Times the controller re-estimated due to drift. */
    std::size_t reestimations = 0;
};

/**
 * Run a phased application to completion under a controller.
 *
 * @param app       The phased application.
 * @param machine   The machine.
 * @param space     Configuration space the controller actuates.
 * @param estimator Estimation approach; nullptr runs the oracle,
 *                  which receives the true vectors of each phase the
 *                  moment the phase starts.
 * @param prior     Offline profiles for the estimator.
 * @param options   Controller options (targetRate is the real-time
 *                  frame demand in frames/s).
 * @param rng       Randomness (probe choice, measurement noise).
 */
PhasedRunResult runPhased(const workloads::PhasedApplication &app,
                          const platform::Machine &machine,
                          const platform::ConfigSpace &space,
                          const estimators::Estimator *estimator,
                          const telemetry::ProfileStore &prior,
                          ControllerOptions options, stats::Rng &rng);

} // namespace leo::runtime

#endif // LEO_RUNTIME_PHASED_RUN_HH
