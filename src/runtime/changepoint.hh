/**
 * @file
 * Online change-point detection for the controller.
 *
 * The legacy phase-change trigger (ControllerOptions::driftThreshold
 * / driftWindow) compares each measurement against that
 * configuration's own EWMA history and needs driftWindow consecutive
 * large gaps — robust, but slow on gradual drifts (the EWMA tracks
 * the drift away) and wasteful on clean step changes (it always
 * waits the full window). This header provides the replacement
 * detectors, fed with *standardized residuals* of each window's
 * measurement against the current fit's predictive distribution:
 *
 *     r_t = (measured - predicted) / clamp(sigma_pred, floor, cap)
 *
 * and centered on the mean residual observed during the post-fit
 * warmup windows, so persistent fit bias at the paced configuration
 * is subtracted out before either statistic sees it.
 *
 * Two methods:
 *
 *  - Cusum: a two-sided CUSUM. g+ <- max(0, g+ + r - k),
 *    g- <- max(0, g- - r - k); alarm when either exceeds h. With
 *    k = cusumDrift (in sigmas) the statistic ignores persistent
 *    bias below k and accumulates anything larger, so a drift of
 *    2 sigma fires after about h / (2 - k) windows. The onset
 *    estimate is the window where the firing side last sat at zero,
 *    giving a detection-latency sample for the histogram.
 *
 *  - Bayesian: bounded-run-length Bayesian online change-point
 *    detection (Adams & MacKay) on the same residuals with a
 *    constant hazard, unit observation variance and a N(0, 1) prior
 *    on the post-change mean. An alarm fires when the posterior
 *    probability that the run length is short (a change happened
 *    within the last few windows) exceeds detectProbability. The
 *    latency estimate is that short run length.
 *
 * Detectors are plain deterministic state machines: no clocks, no
 * RNG, no allocation after configure(), and observe() never throws —
 * the controller calls it inside its never-throw window path.
 */

#ifndef LEO_RUNTIME_CHANGEPOINT_HH
#define LEO_RUNTIME_CHANGEPOINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/serialize.hh"

namespace leo::runtime
{

/** What the controller does when a change-point fires. */
enum class ChangePointPolicy
{
    /** Detection disabled; the legacy drift trigger runs. The whole
     *  pipeline is bitwise identical to pre-detector behavior. */
    Off,
    /** Discard estimates, warm fits and observation history, then
     *  re-sample and fit cold — the right reaction to a genuine
     *  phase change (the old posterior describes dead behavior). */
    ColdRefit,
    /** Re-sample but keep the previous fits as the EM warm start /
     *  prior anchor — the cheaper reaction when phases revisit
     *  familiar territory. */
    PriorReset
};

/** Detection algorithm. */
enum class ChangePointMethod
{
    Cusum,   //!< Two-sided CUSUM (the default).
    Bayesian //!< Bounded-run-length Bayesian online detection.
};

/** Detector tunables (shared by both methods). */
struct ChangePointOptions
{
    /** Algorithm choice. */
    ChangePointMethod method = ChangePointMethod::Cusum;
    /** CUSUM allowance k, in predictive sigmas: shifts smaller than
     *  this are treated as in-control noise. */
    double cusumDrift = 0.5;
    /** CUSUM alarm threshold h, in accumulated sigmas. */
    double cusumThreshold = 6.0;
    /** Relative floor on the predictive sigma (fraction of the
     *  predicted value): keeps residuals finite and tempers
     *  overconfident fits. */
    double minRelativeSigma = 0.02;
    /** Relative ceiling on the predictive sigma (fraction of the
     *  predicted value): an *under*confident fit — e.g. a cold refit
     *  from a handful of probes, whose predictive variance away from
     *  the probed configurations is huge — would otherwise
     *  standardize every residual to ~0 and blind the detector
     *  exactly when the map is most suspect. 0 disables the cap. */
    double maxRelativeSigma = 0.15;
    /** Windows after a (re)fit before residuals are scored. Warmup
     *  does double duty: the mean residual over these windows is
     *  taken as the fit's persistent bias at the paced
     *  configuration, and later residuals are centered on it — so
     *  static estimation error does not masquerade as drift, while a
     *  genuine phase change still moves the centered residual. */
    std::size_t warmupWindows = 2;
    /** Consecutive windows where the measured rate misses the demand
     *  (average below 98% of target) while the map predicts the
     *  paced configuration meets it, before the controller treats
     *  starvation itself as change-grade evidence and re-samples.
     *  Warmup centering absorbs static fit bias, so a uniformly
     *  optimistic fit can pace a missing configuration with no
     *  residual signal left — this is the escape hatch. Genuinely
     *  infeasible demand never trips it (the map concedes the
     *  shortfall there). 0 disables it. */
    std::size_t starveWindows = 8;
    /** Bayesian: constant per-window change hazard. */
    double hazard = 0.02;
    /** Bayesian: run-length truncation bound. */
    std::size_t maxRunLength = 64;
    /** Bayesian: alarm when P(run length <= shortRunWindows) exceeds
     *  this. */
    double detectProbability = 0.80;
    /** Bayesian: "short" run-length cutoff for the alarm. */
    std::size_t shortRunWindows = 3;
};

/**
 * One online change-point detector over a standardized-residual
 * stream. The controller runs two (heartbeat and power residuals)
 * and reacts when either alarms.
 */
class ChangePointDetector
{
  public:
    ChangePointDetector() = default;

    /** Install options and reset all state. */
    void configure(const ChangePointOptions &options);

    /** Drop accumulated evidence (call after every (re)fit: the
     *  predictive distribution the residuals are scored against has
     *  changed). Keeps the options. */
    void reset();

    /**
     * Score one window's standardized residual.
     *
     * @param residual (measured - predicted) / sigma; the caller
     *                 guarantees finiteness.
     * @return True when a change-point fires this window. The
     *         detector keeps accumulating after an alarm; the caller
     *         is expected to reset() when it reacts.
     */
    bool observe(double residual);

    /** @return Windows scored since the last reset(). */
    std::size_t windowsObserved() const { return windows_; }

    /**
     * Estimated windows between the change and the alarm, valid
     * after observe() returned true: the CUSUM onset distance, or
     * the Bayesian short-run MAP length.
     */
    std::size_t lastDetectionLatency() const { return latency_; }

    /** Serialize detector state (options are construction data and
     *  are not shipped). */
    void save(linalg::ByteWriter &w) const;

    /** Restore state written by save(). Returns false (and resets)
     *  on a malformed blob. */
    bool restore(linalg::ByteReader &r);

  private:
    bool observeCusum(double residual);
    bool observeBayes(double residual);

    ChangePointOptions options_; // leo-lint: allow(snapshot-completeness) configuration, supplied on construction
    std::size_t windows_ = 0;
    std::size_t latency_ = 0;
    // Warmup bias estimate (see ChangePointOptions::warmupWindows).
    double warmupSum_ = 0.0;
    double bias_ = 0.0;
    // CUSUM state.
    double gPos_ = 0.0;
    double gNeg_ = 0.0;
    std::size_t lastZeroPos_ = 0; //!< Window where g+ last sat at 0.
    std::size_t lastZeroNeg_ = 0;
    // Bayesian state: run-length posterior and per-run sufficient
    // statistics (count, residual sum), all length maxRunLength + 1.
    std::vector<double> runProb_;
    std::vector<double> runCount_;
    std::vector<double> runSum_;
    std::vector<double> scratchProb_; // leo-lint: allow(snapshot-completeness) scratch, resized on demand
    std::vector<double> scratchCount_; // leo-lint: allow(snapshot-completeness) scratch, resized on demand
    std::vector<double> scratchSum_; // leo-lint: allow(snapshot-completeness) scratch, resized on demand
};

/** Histogram buckets for detection-latency-in-windows metrics. */
std::vector<double> changePointLatencyBuckets();

} // namespace leo::runtime

#endif // LEO_RUNTIME_CHANGEPOINT_HH
