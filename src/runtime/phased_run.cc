/**
 * @file
 * Implementation of the closed-loop phased simulation.
 */

#include "runtime/phased_run.hh"

#include <algorithm>
#include <memory>

#include "linalg/error.hh"
#include "workloads/ground_truth.hh"

namespace leo::runtime
{

PhasedRunResult
runPhased(const workloads::PhasedApplication &app,
          const platform::Machine &machine,
          const platform::ConfigSpace &space,
          const estimators::Estimator *estimator,
          const telemetry::ProfileStore &prior,
          ControllerOptions options, stats::Rng &rng)
{
    require(options.targetRate > 0.0,
            "runPhased: target rate must be > 0");

    options.idlePower = machine.spec().idleSystemPowerW;
    EnergyController controller(space, estimator, prior, options);

    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;

    PhasedRunResult result;
    result.phaseEnergy.assign(app.phases().size(), 0.0);

    // Cache one model per phase.
    std::vector<std::unique_ptr<workloads::ApplicationModel>> models;
    std::vector<workloads::GroundTruth> truths;
    for (const workloads::Phase &ph : app.phases()) {
        models.push_back(std::make_unique<workloads::ApplicationModel>(
            ph.profile, machine));
        if (estimator == nullptr)
            truths.push_back(
                workloads::computeGroundTruth(*models.back(), space));
    }

    const double period = 1.0 / options.targetRate;
    const double idle_power = machine.spec().idleSystemPowerW;
    std::size_t deadline_hits = 0;
    std::size_t last_phase = static_cast<std::size_t>(-1);

    const std::size_t total = app.totalFrames();
    for (std::size_t f = 0; f < total; ++f) {
        const std::size_t phase = app.phaseIndexAt(f);
        const workloads::ApplicationModel &model = *models[phase];

        if (estimator == nullptr && phase != last_phase) {
            // Oracle: perfect knowledge arrives at the phase boundary.
            controller.setEstimates(truths[phase].performance,
                                    truths[phase].power);
        }
        last_phase = phase;

        const bool sampling =
            controller.state() == EnergyController::State::Sampling;
        const std::size_t cfg = controller.nextConfig(rng);
        const platform::ResourceAssignment &ra = space.assignment(cfg);

        // The controller sees noisy telemetry.
        telemetry::Sample s;
        s.configIndex = cfg;
        s.heartbeatRate = monitor.measureRate(model, ra, rng);
        s.powerWatts = meter.read(model, ra, rng);
        controller.recordMeasurement(s);

        // True frame accounting: one heartbeat of work.
        const double true_rate = model.heartbeatRate(ra);
        const double true_power = model.powerWatts(ra);
        invariant(true_rate > 0.0, "runPhased: zero true rate");
        const double busy = 1.0 / true_rate;
        double energy = true_power * busy;
        if (busy < period)
            energy += idle_power * (period - busy);

        FrameRecord rec;
        rec.frame = f;
        rec.phase = phase;
        rec.configIndex = cfg;
        rec.rate = true_rate;
        rec.powerWatts = true_power;
        rec.energyJoules = energy;
        rec.normalizedPerformance = true_rate / options.targetRate;
        rec.sampling = sampling;
        result.trace.push_back(rec);

        result.phaseEnergy[phase] += energy;
        result.totalEnergy += energy;
        if (busy <= period * (1.0 + 1e-9))
            ++deadline_hits;
    }

    result.deadlineHitRate =
        static_cast<double>(deadline_hits) / static_cast<double>(total);
    result.reestimations = controller.reestimations();
    return result;
}

} // namespace leo::runtime
