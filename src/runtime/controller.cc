/**
 * @file
 * Implementation of the online energy controller.
 */

#include "runtime/controller.hh"

#include <algorithm>

#include "linalg/error.hh"

namespace leo::runtime
{

EnergyController::EnergyController(const platform::ConfigSpace &space,
                                   const estimators::Estimator *estimator,
                                   const telemetry::ProfileStore &prior,
                                   ControllerOptions options)
    : space_(space), estimator_(estimator), prior_(prior),
      options_(options)
{
    require(options_.targetRate > 0.0,
            "EnergyController: target rate must be > 0");
    require(options_.driftWindow >= 1,
            "EnergyController: drift window must be >= 1");
    if (estimator_ == nullptr) {
        // Oracle-fed controller: estimates arrive via setEstimates();
        // there is nothing to sample.
        state_ = State::Controlling;
    }
}

std::size_t
EnergyController::nextConfig(stats::Rng &rng)
{
    if (state_ == State::Sampling) {
        if (probe_plan_.empty()) {
            probe_plan_ = rng.sampleWithoutReplacement(
                space_.size(),
                std::min(options_.sampleBudget, space_.size()));
            probe_next_ = 0;
        }
        pending_config_ = probe_plan_[probe_next_];
        return pending_config_;
    }
    pending_config_ = paceConfig();
    return pending_config_;
}

void
EnergyController::recordMeasurement(const telemetry::Sample &s)
{
    // Track each configuration's own measurement history; it is the
    // drift reference in Controlling state.
    auto hist = history_.find(s.configIndex);

    if (state_ == State::Sampling) {
        if (hist == history_.end())
            history_[s.configIndex] = s.heartbeatRate;
        else
            hist->second = 0.5 * (hist->second + s.heartbeatRate);
        observations_.push(s);
        ++probe_next_;
        if (probe_next_ >= probe_plan_.size()) {
            fit();
            replan();
            state_ = State::Controlling;
        }
        return;
    }

    // Controlling: track the measured rate and test for drift
    // against the prediction for the configuration that ran.
    const double alpha = 0.3;
    avg_rate_ = have_avg_
                    ? alpha * s.heartbeatRate + (1.0 - alpha) * avg_rate_
                    : s.heartbeatRate;
    have_avg_ = true;

    if (hist != history_.end() && hist->second > 0.0) {
        const double gap =
            std::abs(s.heartbeatRate - hist->second) / hist->second;
        if (gap > options_.driftThreshold)
            ++drift_count_;
        else
            drift_count_ = 0;
        // The EWMA follows slowly so a genuine step change stays
        // detectable across the whole drift window.
        hist->second = 0.9 * hist->second + 0.1 * s.heartbeatRate;
    } else {
        history_[s.configIndex] = s.heartbeatRate;
    }

    if (drift_count_ >= options_.driftWindow &&
        estimator_ != nullptr) {
        // Phase change: the old observations and the measurement
        // history describe dead behaviour.
        history_.clear();
        observations_ = telemetry::Observations{};
        probe_plan_.clear();
        probe_next_ = 0;
        drift_count_ = 0;
        boost_ = 0;
        have_avg_ = false;
        ++reestimations_;
        state_ = State::Sampling;
        return;
    }

    // Gradient-ascent performance guard (Section 6.6): climb the
    // frontier while the demand is missed. Ascent only — backing off
    // on a lucky fast window would oscillate between meeting and
    // missing; the boost resets at the next (re-)estimation instead.
    if (have_avg_ && !frontier_.empty() &&
        avg_rate_ < options_.targetRate * 0.98 &&
        segment_ + 1 + boost_ < frontier_.size()) {
        ++boost_;
    }
}

void
EnergyController::setEstimates(linalg::Vector performance,
                               linalg::Vector power)
{
    require(performance.size() == space_.size() &&
                power.size() == space_.size(),
            "EnergyController: estimate size mismatch");
    perf_ = std::move(performance);
    power_ = std::move(power);
    replan();
    state_ = State::Controlling;
}

void
EnergyController::fit()
{
    if (estimator_ == nullptr)
        return;
    // LEO fits reuse one workspace across re-estimations and, after
    // the first fit, warm-start EM from the previous parameters — a
    // phase change shifts the observations, not the problem shape,
    // so the previous theta is a strong init (typically 1-2 EM
    // iterations instead of 3-4). Other estimators take the generic
    // interface.
    const auto *as_leo =
        dynamic_cast<const estimators::LeoEstimator *>(estimator_);
    if (as_leo) {
        estimators::MetricEstimate perf = as_leo->estimateMetric(
            space_,
            priorVectors(prior_, estimators::Metric::Performance),
            observations_.indices, observations_.performance,
            &fit_ws_, have_fits_ ? &perf_fit_ : nullptr, &perf_fit_);
        estimators::MetricEstimate power = as_leo->estimateMetric(
            space_, priorVectors(prior_, estimators::Metric::Power),
            observations_.indices, observations_.power, &fit_ws_,
            have_fits_ ? &power_fit_ : nullptr, &power_fit_);
        have_fits_ = true;
        perf_ = std::move(perf.values);
        power_ = std::move(power.values);
        return;
    }
    const estimators::EstimationInputs inputs{space_, prior_,
                                              observations_};
    estimators::Estimate est = estimator_->estimate(inputs);
    perf_ = std::move(est.performance.values);
    power_ = std::move(est.power.values);
}

void
EnergyController::replan()
{
    if (!hasEstimates())
        return;
    // Pacing selects a single configuration per window (the slack is
    // idled out inside the window), so the candidate set is the full
    // Pareto frontier: unlike batch scheduling, pure selection can
    // exploit frontier points that sit above the convex hull.
    frontier_ = optimizer::paretoFrontier(perf_, power_);

    // Locate the segment bracketing the demand.
    segment_ = 0;
    while (segment_ + 1 < frontier_.size() &&
           frontier_[segment_ + 1].performance < options_.targetRate) {
        ++segment_;
    }
    boost_ = 0;
    have_avg_ = false;
    drift_count_ = 0;
}

std::size_t
EnergyController::paceConfig()
{
    if (frontier_.empty()) {
        // No estimates at all: run the final configuration (all
        // resources) as a safe default.
        return space_.size() - 1;
    }
    // Pace-to-idle: run the cheapest hull vertex whose estimated
    // rate covers the per-window demand and let the caller idle out
    // the slack inside the window. (Duty-cycling between the two
    // bracketing vertices would save a little more energy but makes
    // every other frame miss its individual deadline; Section 6.6
    // requires the demand to be met continuously.) The gradient-
    // ascent boost climbs further up the hull when measurements say
    // the chosen vertex under-delivers.
    std::size_t pace = segment_;
    if (pace + 1 < frontier_.size() &&
        frontier_[pace].performance < options_.targetRate) {
        ++pace;
    }
    pace = std::min(pace + boost_, frontier_.size() - 1);
    const optimizer::TradeoffPoint &v = frontier_[pace];
    if (v.configIndex == optimizer::kIdleConfig) {
        // Demand below the slowest vertex and no boost: still need a
        // real configuration to make progress; use the next one.
        const std::size_t next = std::min(pace + 1, frontier_.size() - 1);
        return frontier_[next].configIndex;
    }
    return v.configIndex;
}

} // namespace leo::runtime
