/**
 * @file
 * Implementation of the online energy controller.
 */

#include "runtime/controller.hh"

#include <algorithm>
#include <cmath>
#include <exception>

#include "estimators/fit_io.hh"
#include "estimators/offline.hh"
#include "linalg/error.hh"

namespace leo::runtime
{

EnergyController::EnergyController(const platform::ConfigSpace &space,
                                   const estimators::Estimator *estimator,
                                   const telemetry::ProfileStore &prior,
                                   ControllerOptions options)
    : space_(space), estimator_(estimator), prior_(prior),
      options_(options)
{
    require(options_.targetRate > 0.0,
            "EnergyController: target rate must be > 0");
    require(options_.driftWindow >= 1,
            "EnergyController: drift window must be >= 1");
    if (estimator_ == nullptr) {
        // Oracle-fed controller: estimates arrive via setEstimates();
        // there is nothing to sample.
        state_ = State::Controlling;
    }
    if (options_.changePointPolicy != ChangePointPolicy::Off) {
        cp_perf_.configure(options_.changePoint);
        cp_power_.configure(options_.changePoint);
    }
}

std::size_t
EnergyController::nextConfig(stats::Rng &rng)
{
    if (state_ == State::Sampling) {
        // Waiting on applyExternalFit(): the plan is exhausted, so
        // keep re-offering the last probe (its measurements are
        // harmless out-of-band telemetry) until the fit lands.
        if (fit_pending_)
            return pending_config_;
        if (probe_plan_.empty()) {
            probe_plan_ = rng.sampleWithoutReplacement(
                space_.size(),
                std::min(options_.sampleBudget, space_.size()));
            probe_next_ = 0;
        }
        pending_config_ = probe_plan_[probe_next_];
        return pending_config_;
    }
    pending_config_ = paceConfig();
    return pending_config_;
}

void
EnergyController::recordMeasurement(const telemetry::Sample &s)
{
    obs::Span span(obs::names::kControllerWindowSpan, "runtime");
    span.arg("config", static_cast<double>(s.configIndex));
    span.arg("state",
             state_ == State::Sampling ? 0.0 : 1.0);

    // Reject unusable telemetry up front: a non-finite or
    // non-positive reading (a faulted sensor poll — see
    // faults/faults.hh) must neither enter the fit nor advance the
    // probe plan, so the pending configuration is simply re-probed.
    if (s.configIndex >= space_.size() ||
        !std::isfinite(s.heartbeatRate) || s.heartbeatRate <= 0.0 ||
        !std::isfinite(s.powerWatts) || s.powerWatts <= 0.0) {
        samples_rejected_.add(1);
        return;
    }

    // Track each configuration's own measurement history; it is the
    // drift reference in Controlling state.
    auto hist = history_.find(s.configIndex);

    if (state_ == State::Sampling) {
        if (hist == history_.end())
            history_[s.configIndex] = s.heartbeatRate;
        else
            hist->second = 0.5 * (hist->second + s.heartbeatRate);
        // While a deferred fit is pending the plan is already
        // complete; the history update above is all this sample is
        // good for.
        if (fit_pending_)
            return;
        // Only a measurement of the pending probe advances the plan
        // and enters the fit's observation set; anything else is
        // out-of-band telemetry (it fed the history above) — an
        // unsolicited sample must not skip a planned probe or
        // mislabel the fit input.
        if (probe_plan_.empty() ||
            s.configIndex != probe_plan_[probe_next_])
            return;
        observations_.push(s);
        ++probe_next_;
        if (probe_next_ >= probe_plan_.size()) {
            if (options_.deferFits && estimator_ != nullptr) {
                fit_pending_ = true;
                return;
            }
            fit();
            replan();
            state_ = State::Controlling;
        }
        return;
    }

    // Controlling on fallback estimates: count the window and, when
    // the backoff expires, retry estimation with fresh probes.
    if (fallback_remaining_ > 0) {
        fallback_windows_.add(1);
        if (--fallback_remaining_ == 0 && estimator_ != nullptr) {
            beginSampling();
            return;
        }
    }

    // Controlling: track the measured rate and test for drift
    // against the prediction for the configuration that ran.
    const double alpha = 0.3;
    avg_rate_ = have_avg_
                    ? alpha * s.heartbeatRate + (1.0 - alpha) * avg_rate_
                    : s.heartbeatRate;
    have_avg_ = true;

    if (hist != history_.end() && hist->second > 0.0) {
        const double gap =
            std::abs(s.heartbeatRate - hist->second) / hist->second;
        if (gap > options_.driftThreshold)
            ++drift_count_;
        else
            drift_count_ = 0;
        // The EWMA follows slowly so a genuine step change stays
        // detectable across the whole drift window.
        hist->second = 0.9 * hist->second + 0.1 * s.heartbeatRate;
    } else {
        history_[s.configIndex] = s.heartbeatRate;
    }

    if (options_.changePointPolicy == ChangePointPolicy::Off) {
        if (drift_count_ >= options_.driftWindow &&
            estimator_ != nullptr) {
            // Phase change: the old observations and the measurement
            // history describe dead behaviour.
            ++reestimations_;
            beginSampling();
            return;
        }
    } else if (estimator_ != nullptr) {
        // Change-point policy: score this window's standardized
        // residuals against the current estimates instead of waiting
        // out the fixed drift window.
        std::size_t latency = 0;
        bool fired = changePointFired(s, &latency);
        if (!fired && options_.changePoint.starveWindows > 0) {
            // Starvation escape (see ChangePointOptions): the map
            // says the configuration that just ran meets the demand,
            // the measurement says the demand is missed — the fit is
            // wrong exactly where it is being trusted, even when the
            // centered residual stream has been silenced by a
            // uniformly optimistic fit. Genuinely infeasible demand
            // does not qualify: there the map itself concedes the
            // paced configuration falls short.
            const bool starved =
                have_avg_ &&
                avg_rate_ < options_.targetRate * 0.98 &&
                s.configIndex < perf_.size() &&
                perf_[s.configIndex] >= options_.targetRate;
            if (!starved)
                starve_count_ = 0;
            else if (++starve_count_ >=
                     options_.changePoint.starveWindows) {
                fired = true;
                latency = starve_count_;
            }
        }
        if (fired) {
            changepoints_detected_.add(1);
            changepoint_latency_.record(
                static_cast<double>(latency));
            ++reestimations_;
            if (options_.changePointPolicy ==
                ChangePointPolicy::ColdRefit) {
                // The old posterior describes dead behavior: drop
                // the warm fits so the next EM runs from the cold
                // init (PriorReset keeps them as the anchor).
                have_fits_ = false;
                perf_fit_ = estimators::LeoFit{};
                power_fit_ = estimators::LeoFit{};
            }
            beginSampling();
            return;
        }
    }

    // Gradient-ascent performance guard (Section 6.6): climb the
    // frontier while the demand is missed. Ascent only — backing off
    // on a lucky fast window would oscillate between meeting and
    // missing; the boost resets at the next (re-)estimation instead.
    if (have_avg_ && !frontier_.empty() &&
        avg_rate_ < options_.targetRate * 0.98 &&
        segment_ + 1 + boost_ < frontier_.size()) {
        ++boost_;
    }

    // Per-window refit: fold this window's measurement into the
    // frozen-theta conditioners and replan on the refreshed map. Any
    // numerical surprise just deactivates the refitters — the
    // controller falls back to fit-once-then-watch, never crashes.
    if (refit_perf_.active() && refit_power_.active()) {
        try {
            refit_perf_.addSample(s.configIndex, s.heartbeatRate);
            refit_power_.addSample(s.configIndex, s.powerWatts);
            if (refit_perf_.predictInto(perf_) &&
                refit_power_.predictInto(power_) &&
                perf_.allFinite() && power_.allFinite()) {
                replanPreserving();
            } else {
                refit_perf_.deactivate();
                refit_power_.deactivate();
            }
        } catch (const std::exception &) {
            refit_perf_.deactivate();
            refit_power_.deactivate();
        }
    }
}

double
EnergyController::predictiveSigma(const estimators::LeoFit &fit,
                                  std::size_t config,
                                  double predicted) const
{
    double variance = 0.0;
    if (have_fits_)
        variance = fit.predictiveVarianceAt(config);
    double sigma = variance > 0.0 ? std::sqrt(variance) : 0.0;
    // An underconfident fit (cold refit from a few probes) must not
    // blind the detector by inflating sigma without bound.
    const double cap = options_.changePoint.maxRelativeSigma;
    if (cap > 0.0)
        sigma = std::min(sigma, cap * std::abs(predicted));
    const double floor = std::max(
        options_.changePoint.minRelativeSigma * std::abs(predicted),
        1e-9);
    return std::max(sigma, floor);
}

bool
EnergyController::changePointFired(const telemetry::Sample &s,
                                   std::size_t *latency)
{
    // Residuals need a prediction to be residuals *of*; on fallback
    // or race-to-idle estimates there is none worth scoring.
    if (perf_.size() != space_.size() ||
        power_.size() != space_.size())
        return false;
    bool fired = false;
    std::size_t lat = 0;
    try {
        const double predicted_rate = perf_[s.configIndex];
        const double predicted_power = power_[s.configIndex];
        const double rate_sigma =
            predictiveSigma(perf_fit_, s.configIndex,
                            predicted_rate);
        const double power_sigma =
            predictiveSigma(power_fit_, s.configIndex,
                            predicted_power);
        if (cp_perf_.observe(
                (s.heartbeatRate - predicted_rate) / rate_sigma)) {
            fired = true;
            lat = cp_perf_.lastDetectionLatency();
        }
        if (cp_power_.observe(
                (s.powerWatts - predicted_power) / power_sigma)) {
            fired = true;
            lat = std::max(lat, cp_power_.lastDetectionLatency());
        }
    } catch (const std::exception &) {
        // A fit without a usable variance is a scoring problem, not
        // a phase change; keep controlling.
        return false;
    }
    if (fired && latency != nullptr)
        *latency = lat;
    return fired;
}

void
EnergyController::setEstimates(linalg::Vector performance,
                               linalg::Vector power)
{
    require(performance.size() == space_.size() &&
                power.size() == space_.size(),
            "EnergyController: estimate size mismatch");
    perf_ = std::move(performance);
    power_ = std::move(power);
    fallback_remaining_ = 0;
    fit_pending_ = false;
    replan();
    state_ = State::Controlling;
}

void
EnergyController::beginSampling()
{
    refit_perf_.deactivate();
    refit_power_.deactivate();
    history_.clear();
    observations_ = telemetry::Observations{};
    probe_plan_.clear();
    probe_next_ = 0;
    drift_count_ = 0;
    starve_count_ = 0;
    boost_ = 0;
    have_avg_ = false;
    fallback_remaining_ = 0;
    fit_pending_ = false;
    cp_perf_.reset();
    cp_power_.reset();
    state_ = State::Sampling;
}

void
EnergyController::fit()
{
    obs::Span span(obs::names::kControllerFitSpan, "runtime");
    span.arg("observations",
             static_cast<double>(observations_.size()));

    // No estimator throw escapes the controller: a failed or
    // non-finite fit engages the degradation policy instead of
    // crashing the control loop mid-flight.
    try {
        fitUnguarded();
        if (perf_.size() == space_.size() &&
            power_.size() == space_.size() && perf_.allFinite() &&
            power_.allFinite()) {
            fallback_remaining_ = 0;
            seedRefits();
            return;
        }
    } catch (const std::exception &) {
        // Fall through to the fallback policy.
    }
    refit_perf_.deactivate();
    refit_power_.deactivate();
    fits_failed_.add(1);
    fallbackEstimates();
}

void
EnergyController::seedRefits()
{
    refit_perf_.deactivate();
    refit_power_.deactivate();
    if (options_.refitMode == RefitMode::None || !have_fits_)
        return;
    // Arm the conditioners from the fresh theta and replay the fit's
    // own observation set, so the first refit prediction starts from
    // (a Woodbury re-derivation of) the fit's posterior instead of
    // snapping back to the prior mean.
    try {
        const bool ok =
            refit_perf_.reset(perf_fit_, options_.onlineSampleWindow,
                              options_.refitMode) &&
            refit_power_.reset(power_fit_, options_.onlineSampleWindow,
                               options_.refitMode);
        if (!ok) {
            refit_perf_.deactivate();
            refit_power_.deactivate();
            return;
        }
        for (std::size_t i = 0; i < observations_.indices.size(); ++i) {
            refit_perf_.addSample(observations_.indices[i],
                                  observations_.performance[i]);
            refit_power_.addSample(observations_.indices[i],
                                   observations_.power[i]);
        }
    } catch (const std::exception &) {
        refit_perf_.deactivate();
        refit_power_.deactivate();
    }
}

void
EnergyController::replanPreserving()
{
    if (!hasEstimates()) {
        frontier_.clear();
        return;
    }
    frontier_ = optimizer::paretoFrontier(perf_, power_);
    segment_ = 0;
    while (segment_ + 1 < frontier_.size() &&
           frontier_[segment_ + 1].performance < options_.targetRate) {
        ++segment_;
    }
    // boost_, have_avg_ and drift_count_ deliberately survive:
    // paceConfig() clamps the boost against the new frontier size.
}

void
EnergyController::fallbackEstimates()
{
    // Fallback order (DESIGN.md "Failure model and degradation
    // policy"): prior-mean estimates when an offline prior exists;
    // otherwise clear the estimates so paceConfig() races the
    // all-resources configuration (race-to-idle). Either way the
    // backoff timer re-enters Sampling with fresh probes later.
    bool have_fallback = false;
    if (prior_.numApplications() > 0) {
        try {
            const estimators::OfflineEstimator offline;
            estimators::MetricEstimate perf = offline.estimateMetric(
                space_,
                priorVectors(prior_, estimators::Metric::Performance),
                observations_.indices, observations_.performance);
            estimators::MetricEstimate power = offline.estimateMetric(
                space_, priorVectors(prior_, estimators::Metric::Power),
                observations_.indices, observations_.power);
            if (perf.values.allFinite() && power.values.allFinite()) {
                perf_ = std::move(perf.values);
                power_ = std::move(power.values);
                have_fallback = true;
            }
        } catch (const std::exception &) {
            // Prior itself unusable; race to idle below.
        }
    }
    if (!have_fallback) {
        perf_ = linalg::Vector{};
        power_ = linalg::Vector{};
    }
    fallback_remaining_ = options_.fallbackBackoffWindows;
}

void
EnergyController::fitUnguarded()
{
    if (estimator_ == nullptr)
        return;
    // LEO fits reuse one workspace across re-estimations and, after
    // the first fit, warm-start EM from the previous parameters — a
    // phase change shifts the observations, not the problem shape,
    // so the previous theta is a strong init (typically 1-2 EM
    // iterations instead of 3-4). Other estimators take the generic
    // interface.
    const auto *as_leo =
        dynamic_cast<const estimators::LeoEstimator *>(estimator_);
    if (as_leo) {
        const estimators::CovarianceRep rep = fitRepresentation();
        estimators::MetricEstimate perf = as_leo->estimateMetric(
            space_,
            priorVectors(prior_, estimators::Metric::Performance),
            observations_.indices, observations_.performance,
            &fit_ws_, have_fits_ ? &perf_fit_ : nullptr, &perf_fit_,
            rep);
        estimators::MetricEstimate power = as_leo->estimateMetric(
            space_, priorVectors(prior_, estimators::Metric::Power),
            observations_.indices, observations_.power, &fit_ws_,
            have_fits_ ? &power_fit_ : nullptr, &power_fit_, rep);
        have_fits_ = true;
        samples_rejected_.add(perf.samplesRejected +
                              power.samplesRejected);
        perf_ = std::move(perf.values);
        power_ = std::move(power.values);
        return;
    }
    const estimators::EstimationInputs inputs{space_, prior_,
                                              observations_};
    estimators::Estimate est = estimator_->estimate(inputs);
    samples_rejected_.add(est.performance.samplesRejected +
                          est.power.samplesRejected);
    perf_ = std::move(est.performance.values);
    power_ = std::move(est.power.values);
}

void
EnergyController::replan()
{
    if (!hasEstimates()) {
        // Race-to-idle degradation: with no estimates at all the
        // frontier is unknown; paceConfig() then runs the final
        // (all-resources) configuration.
        frontier_.clear();
        return;
    }
    // Pacing selects a single configuration per window (the slack is
    // idled out inside the window), so the candidate set is the full
    // Pareto frontier: unlike batch scheduling, pure selection can
    // exploit frontier points that sit above the convex hull.
    frontier_ = optimizer::paretoFrontier(perf_, power_);

    // Locate the segment bracketing the demand.
    segment_ = 0;
    while (segment_ + 1 < frontier_.size() &&
           frontier_[segment_ + 1].performance < options_.targetRate) {
        ++segment_;
    }
    boost_ = 0;
    have_avg_ = false;
    drift_count_ = 0;
    starve_count_ = 0;
    // New estimates mean a new predictive distribution: residual
    // evidence accumulated against the old one is void.
    cp_perf_.reset();
    cp_power_.reset();
}

estimators::CovarianceRep
EnergyController::fitRepresentation() const
{
    // An estimator constructed with an explicit non-Dense
    // representation keeps it; the controller knob only replaces the
    // estimator's Dense default (so pre-existing LowRank/Auto opt-ins
    // behave exactly as before this knob existed).
    const auto *as_leo =
        dynamic_cast<const estimators::LeoEstimator *>(estimator_);
    if (as_leo && as_leo->options().representation !=
                      estimators::CovarianceRep::Dense)
        return as_leo->options().representation;
    return options_.representation;
}

void
EnergyController::applyExternalFit(estimators::MetricEstimate perf,
                                   estimators::MetricEstimate power,
                                   estimators::LeoFit perf_fit,
                                   estimators::LeoFit power_fit)
{
    // Mirror of fit() + the post-plan transition in
    // recordMeasurement(), with the estimator call replaced by the
    // caller's results. estimateMetric() never lets an estimator
    // throw escape (it degrades internally), so the inline path's
    // try/catch has no analogue here.
    fit_pending_ = false;
    samples_rejected_.add(perf.samplesRejected +
                          power.samplesRejected);
    perf_fit_ = std::move(perf_fit);
    power_fit_ = std::move(power_fit);
    have_fits_ = true;
    perf_ = std::move(perf.values);
    power_ = std::move(power.values);
    if (perf_.size() == space_.size() &&
        power_.size() == space_.size() && perf_.allFinite() &&
        power_.allFinite()) {
        fallback_remaining_ = 0;
        seedRefits();
    } else {
        refit_perf_.deactivate();
        refit_power_.deactivate();
        fits_failed_.add(1);
        fallbackEstimates();
    }
    replan();
    state_ = State::Controlling;
}

namespace
{

/** Snapshot format version; bump when the field list changes. */
constexpr std::uint32_t kControllerStateVersion = 1;

} // namespace

void
EnergyController::saveState(linalg::ByteWriter &w) const
{
    w.u32(kControllerStateVersion);
    w.u64(space_.size());
    w.u8(state_ == State::Sampling ? 0 : 1);
    w.indexVec(observations_.indices);
    w.vec(observations_.performance);
    w.vec(observations_.power);
    w.indexVec(probe_plan_);
    w.u64(probe_next_);
    w.vec(perf_);
    w.vec(power_);
    w.u8(have_fits_ ? 1 : 0);
    if (have_fits_) {
        estimators::saveFit(w, perf_fit_);
        estimators::saveFit(w, power_fit_);
    }
    refit_perf_.save(w);
    refit_power_.save(w);
    // The history map is unordered in memory; the blob orders it by
    // configuration index so identical states serialize identically.
    std::vector<std::pair<std::size_t, double>> hist(history_.begin(),
                                                     history_.end());
    std::sort(hist.begin(), hist.end());
    w.u64(hist.size());
    for (const auto &[idx, rate] : hist) {
        w.u64(idx);
        w.f64(rate);
    }
    w.u64(segment_);
    w.u64(boost_);
    w.f64(avg_rate_);
    w.u8(have_avg_ ? 1 : 0);
    w.u64(drift_count_);
    w.u64(reestimations_);
    w.u64(pending_config_);
    w.u8(fit_pending_ ? 1 : 0);
    w.u64(fallback_remaining_);
    w.u64(fits_failed_.value());
    w.u64(samples_rejected_.value());
    w.u64(fallback_windows_.value());
    // Appended only when the policy is on, so Off-policy blobs stay
    // byte-identical to the historical format (and to pre-detector
    // builds). A controller restores with the same options it saved
    // with — the service already guarantees that.
    if (options_.changePointPolicy != ChangePointPolicy::Off) {
        cp_perf_.save(w);
        cp_power_.save(w);
        w.u64(changepoints_detected_.value());
        w.u64(starve_count_);
    }
}

bool
EnergyController::restoreState(linalg::ByteReader &r)
{
    if (r.u32() != kControllerStateVersion ||
        r.u64() != space_.size()) {
        r.fail();
        beginSampling();
        return false;
    }
    const std::uint8_t state = r.u8();
    observations_ = telemetry::Observations{};
    observations_.indices = r.indexVec();
    observations_.performance = r.vec();
    observations_.power = r.vec();
    probe_plan_ = r.indexVec();
    probe_next_ = static_cast<std::size_t>(r.u64());
    perf_ = r.vec();
    power_ = r.vec();
    have_fits_ = r.u8() != 0;
    if (have_fits_) {
        perf_fit_ = estimators::loadFit(r);
        power_fit_ = estimators::loadFit(r);
    } else {
        perf_fit_ = estimators::LeoFit{};
        power_fit_ = estimators::LeoFit{};
    }
    // Sequenced explicitly: both restores consume their portion of
    // the stream even when the first fails.
    const bool refit_perf_ok = refit_perf_.restore(r);
    const bool refit_power_ok = refit_power_.restore(r);
    const bool refits_ok = refit_perf_ok && refit_power_ok;
    history_.clear();
    const std::size_t hist_count = static_cast<std::size_t>(r.u64());
    for (std::size_t i = 0; i < hist_count && r.ok(); ++i) {
        const std::size_t idx = static_cast<std::size_t>(r.u64());
        history_[idx] = r.f64();
    }
    const std::size_t segment = static_cast<std::size_t>(r.u64());
    boost_ = static_cast<std::size_t>(r.u64());
    avg_rate_ = r.f64();
    have_avg_ = r.u8() != 0;
    drift_count_ = static_cast<std::size_t>(r.u64());
    reestimations_ = static_cast<std::size_t>(r.u64());
    pending_config_ = static_cast<std::size_t>(r.u64());
    fit_pending_ = r.u8() != 0;
    fallback_remaining_ = static_cast<std::size_t>(r.u64());
    const std::uint64_t fits_failed = r.u64();
    const std::uint64_t samples_rejected = r.u64();
    const std::uint64_t fallback_windows = r.u64();
    bool cp_ok = true;
    std::uint64_t changepoints = 0;
    if (options_.changePointPolicy != ChangePointPolicy::Off) {
        const bool cp_perf_ok = cp_perf_.restore(r);
        const bool cp_power_ok = cp_power_.restore(r);
        cp_ok = cp_perf_ok && cp_power_ok;
        changepoints = r.u64();
        starve_count_ = static_cast<std::size_t>(r.u64());
    } else {
        starve_count_ = 0;
    }

    const bool sizes_ok =
        (perf_.empty() || perf_.size() == space_.size()) &&
        (power_.empty() || power_.size() == space_.size()) &&
        observations_.performance.size() ==
            observations_.indices.size() &&
        observations_.power.size() == observations_.indices.size() &&
        probe_next_ <= probe_plan_.size();
    if (!r.ok() || !sizes_ok) {
        beginSampling();
        perf_ = linalg::Vector{};
        power_ = linalg::Vector{};
        perf_fit_ = estimators::LeoFit{};
        power_fit_ = estimators::LeoFit{};
        have_fits_ = false;
        history_.clear();
        frontier_.clear();
        return false;
    }
    // A refitter that failed to restore is not corruption of the
    // whole snapshot: deactivate both (their states pair) and resume
    // on fit-once-then-watch, the standard degradation.
    if (!refits_ok) {
        refit_perf_.deactivate();
        refit_power_.deactivate();
    }
    state_ = state == 0 ? State::Sampling : State::Controlling;
    // The frontier is a pure function of the estimates; recompute it
    // rather than shipping it. The same scan reproduces the saved
    // segment deterministically, so the serialized value is only a
    // cross-check.
    replanPreserving();
    if (segment_ != segment) {
        beginSampling();
        return false;
    }
    // A detector that failed to restore is degradation, not blob
    // corruption: it restarts empty and re-accumulates evidence.
    if (!cp_ok) {
        cp_perf_.reset();
        cp_power_.reset();
    }
    // Counters restore additively; a freshly constructed controller
    // has them at zero, so the resumed totals match the saved run.
    fits_failed_.add(fits_failed);
    samples_rejected_.add(samples_rejected);
    fallback_windows_.add(fallback_windows);
    changepoints_detected_.add(changepoints);
    return true;
}

std::size_t
EnergyController::paceConfig()
{
    if (frontier_.empty()) {
        // No estimates at all: run the final configuration (all
        // resources) as a safe default.
        return space_.size() - 1;
    }
    // Pace-to-idle: run the cheapest hull vertex whose estimated
    // rate covers the per-window demand and let the caller idle out
    // the slack inside the window. (Duty-cycling between the two
    // bracketing vertices would save a little more energy but makes
    // every other frame miss its individual deadline; Section 6.6
    // requires the demand to be met continuously.) The gradient-
    // ascent boost climbs further up the hull when measurements say
    // the chosen vertex under-delivers.
    std::size_t pace = segment_;
    if (pace + 1 < frontier_.size() &&
        frontier_[pace].performance < options_.targetRate) {
        ++pace;
    }
    pace = std::min(pace + boost_, frontier_.size() - 1);
    const optimizer::TradeoffPoint &v = frontier_[pace];
    if (v.configIndex == optimizer::kIdleConfig) {
        // Demand below the slowest vertex and no boost: still need a
        // real configuration to make progress; use the next one.
        const std::size_t next = std::min(pace + 1, frontier_.size() - 1);
        return frontier_[next].configIndex;
    }
    return v.configIndex;
}

} // namespace leo::runtime
