/**
 * @file
 * Simulated power meters and the heartbeat monitor.
 *
 * The testbed of Section 6.1 is instrumented with a WattsUp wall
 * meter (total system power at 1 s intervals), Intel RAPL chip-power
 * counters, and the Application Heartbeats library for performance
 * feedback. These classes reproduce those interfaces over the
 * application models, injecting the measurement noise that the first
 * layer of the hierarchical model (Figure 3, "filtration layer")
 * exists to absorb.
 */

#ifndef LEO_TELEMETRY_METERS_HH
#define LEO_TELEMETRY_METERS_HH

#include "platform/config.hh"
#include "stats/rng.hh"
#include "workloads/app_model.hh"

namespace leo::telemetry
{

/**
 * Abstract power meter: reads Watts for an application running in a
 * configuration.
 */
class PowerMeter
{
  public:
    virtual ~PowerMeter() = default;

    /**
     * Take one reading.
     *
     * @param model The running application.
     * @param ra    Its resource assignment.
     * @param rng   Noise source.
     * @return Measured Watts.
     */
    virtual double read(const workloads::ApplicationBehavior &model,
                        const platform::ResourceAssignment &ra,
                        stats::Rng &rng) const = 0;

    /** @return The meter's sampling interval in seconds. */
    virtual double intervalSeconds() const = 0;
};

/**
 * WattsUp-style wall meter: total system power, 1 s interval, 0.1 W
 * display quantization, a percent-scale gaussian error.
 */
class WattsUpMeter : public PowerMeter
{
  public:
    /**
     * @param relative_noise 1-sigma relative error of a reading.
     * @param quantum        Display quantization in Watts.
     */
    explicit WattsUpMeter(double relative_noise = 0.01,
                          double quantum = 0.1);

    double read(const workloads::ApplicationBehavior &model,
                const platform::ResourceAssignment &ra,
                stats::Rng &rng) const override;

    double intervalSeconds() const override { return 1.0; }

  private:
    double relative_noise_;
    double quantum_;
};

/**
 * RAPL-style chip meter: package power only (no platform overheads),
 * fine-grained interval, small absolute noise.
 */
class RaplMeter : public PowerMeter
{
  public:
    /** @param noise_watts 1-sigma absolute error of a reading. */
    explicit RaplMeter(double noise_watts = 0.4);

    double read(const workloads::ApplicationBehavior &model,
                const platform::ResourceAssignment &ra,
                stats::Rng &rng) const override;

    double intervalSeconds() const override { return 0.001; }

  private:
    double noise_watts_;
};

/**
 * Application Heartbeats monitor: measures the application-defined
 * performance metric (heartbeats/s) over a window, with relative
 * noise from scheduling jitter.
 *
 * measureRate() is virtual so decorators (the fault injectors of
 * faults/faults.hh) can interpose on the reading stream.
 */
class HeartbeatMonitor
{
  public:
    /** @param relative_noise 1-sigma relative error of a window. */
    explicit HeartbeatMonitor(double relative_noise = 0.02);

    virtual ~HeartbeatMonitor() = default;

    /**
     * Measure the heartbeat rate over one window.
     *
     * @param model The running application.
     * @param ra    Its resource assignment.
     * @param rng   Noise source.
     * @return Measured heartbeats/s.
     */
    virtual double measureRate(const workloads::ApplicationBehavior &model,
                               const platform::ResourceAssignment &ra,
                               stats::Rng &rng) const;

  private:
    double relative_noise_;
};

} // namespace leo::telemetry

#endif // LEO_TELEMETRY_METERS_HH
