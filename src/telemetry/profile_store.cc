/**
 * @file
 * Implementation of the offline profile database.
 */

#include "telemetry/profile_store.hh"

#include "linalg/error.hh"

namespace leo::telemetry
{

ProfileStore::ProfileStore(std::vector<ApplicationRecord> records)
    : records_(std::move(records))
{
    for (const ApplicationRecord &r : records_) {
        require(r.performance.size() == spaceSize() &&
                    r.power.size() == spaceSize(),
                "ProfileStore: records of unequal length");
    }
}

ProfileStore
ProfileStore::collect(
    const std::vector<workloads::ApplicationProfile> &profiles,
    const platform::Machine &machine, const platform::ConfigSpace &space,
    const HeartbeatMonitor &monitor, const PowerMeter &meter,
    stats::Rng &rng)
{
    std::vector<ApplicationRecord> records;
    records.reserve(profiles.size());
    for (const workloads::ApplicationProfile &p : profiles) {
        workloads::ApplicationModel model(p, machine);
        ApplicationRecord rec;
        rec.name = p.name;
        rec.performance = linalg::Vector(space.size());
        rec.power = linalg::Vector(space.size());
        for (std::size_t c = 0; c < space.size(); ++c) {
            const platform::ResourceAssignment &ra = space.assignment(c);
            rec.performance[c] = monitor.measureRate(model, ra, rng);
            rec.power[c] = meter.read(model, ra, rng);
        }
        records.push_back(std::move(rec));
    }
    return ProfileStore(std::move(records));
}

std::size_t
ProfileStore::spaceSize() const
{
    return records_.empty() ? 0 : records_.front().performance.size();
}

const ApplicationRecord &
ProfileStore::record(std::size_t i) const
{
    require(i < records_.size(), "ProfileStore index out of range");
    return records_[i];
}

bool
ProfileStore::contains(const std::string &name) const
{
    for (const ApplicationRecord &r : records_)
        if (r.name == name)
            return true;
    return false;
}

ProfileStore
ProfileStore::without(const std::string &name) const
{
    std::vector<ApplicationRecord> kept;
    kept.reserve(records_.size());
    for (const ApplicationRecord &r : records_)
        if (r.name != name)
            kept.push_back(r);
    return ProfileStore(std::move(kept));
}

} // namespace leo::telemetry
