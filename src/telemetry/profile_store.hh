/**
 * @file
 * The offline profile database.
 *
 * LEO "assumes that there is some set of applications for which the
 * power and performance tradeoffs are gathered offline" (Section 1).
 * The ProfileStore is that set: one fully-measured performance and
 * power vector per previously-seen application. The evaluation uses
 * leave-one-out views — when estimating benchmark k, the other 24
 * benchmarks form the prior.
 */

#ifndef LEO_TELEMETRY_PROFILE_STORE_HH
#define LEO_TELEMETRY_PROFILE_STORE_HH

#include <string>
#include <vector>

#include "platform/config_space.hh"
#include "telemetry/meters.hh"
#include "workloads/app_model.hh"

namespace leo::telemetry
{

/** One offline-profiled application. */
struct ApplicationRecord
{
    /** Benchmark name. */
    std::string name;
    /** Measured heartbeat rate in every configuration. */
    linalg::Vector performance;
    /** Measured wall power in every configuration. */
    linalg::Vector power;
};

/**
 * An immutable collection of offline application profiles over one
 * configuration space.
 */
class ProfileStore
{
  public:
    /** Build from existing records (tests, custom priors). */
    explicit ProfileStore(std::vector<ApplicationRecord> records);

    /**
     * Profile a set of applications exhaustively, with measurement
     * noise — the simulator equivalent of the paper's offline data
     * collection (which took up to days per application).
     *
     * @param profiles Applications to profile.
     * @param machine  The machine they run on.
     * @param space    Configuration space to cover.
     * @param monitor  Heartbeat monitor.
     * @param meter    Power meter.
     * @param rng      Measurement noise source.
     */
    static ProfileStore collect(
        const std::vector<workloads::ApplicationProfile> &profiles,
        const platform::Machine &machine,
        const platform::ConfigSpace &space,
        const HeartbeatMonitor &monitor, const PowerMeter &meter,
        stats::Rng &rng);

    /** @return Number of stored applications. */
    std::size_t numApplications() const { return records_.size(); }

    /** @return Number of configurations per record. */
    std::size_t spaceSize() const;

    /** @return Record i. */
    const ApplicationRecord &record(std::size_t i) const;

    /** @return All records. */
    const std::vector<ApplicationRecord> &records() const
    {
        return records_;
    }

    /** @return True iff an application of that name is stored. */
    bool contains(const std::string &name) const;

    /**
     * @return A copy of the store without the named application
     *         (no-op if absent) — the leave-one-out prior.
     */
    ProfileStore without(const std::string &name) const;

  private:
    std::vector<ApplicationRecord> records_;
};

} // namespace leo::telemetry

#endif // LEO_TELEMETRY_PROFILE_STORE_HH
