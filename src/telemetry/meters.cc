/**
 * @file
 * Implementation of the simulated meters.
 */

#include "telemetry/meters.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"

namespace leo::telemetry
{

WattsUpMeter::WattsUpMeter(double relative_noise, double quantum)
    : relative_noise_(relative_noise), quantum_(quantum)
{
    require(relative_noise_ >= 0.0, "WattsUpMeter: negative noise");
    require(quantum_ >= 0.0, "WattsUpMeter: negative quantum");
}

double
WattsUpMeter::read(const workloads::ApplicationBehavior &model,
                   const platform::ResourceAssignment &ra,
                   stats::Rng &rng) const
{
    const double truth = model.powerWatts(ra);
    double reading = truth * (1.0 + rng.gaussian(0.0, relative_noise_));
    if (quantum_ > 0.0)
        reading = std::round(reading / quantum_) * quantum_;
    return std::max(reading, 0.0);
}

RaplMeter::RaplMeter(double noise_watts) : noise_watts_(noise_watts)
{
    require(noise_watts_ >= 0.0, "RaplMeter: negative noise");
}

double
RaplMeter::read(const workloads::ApplicationBehavior &model,
                const platform::ResourceAssignment &ra,
                stats::Rng &rng) const
{
    const double truth = model.chipPowerWatts(ra);
    return std::max(truth + rng.gaussian(0.0, noise_watts_), 0.0);
}

HeartbeatMonitor::HeartbeatMonitor(double relative_noise)
    : relative_noise_(relative_noise)
{
    require(relative_noise_ >= 0.0, "HeartbeatMonitor: negative noise");
}

double
HeartbeatMonitor::measureRate(const workloads::ApplicationBehavior &model,
                              const platform::ResourceAssignment &ra,
                              stats::Rng &rng) const
{
    const double truth = model.heartbeatRate(ra);
    const double reading =
        truth * (1.0 + rng.gaussian(0.0, relative_noise_));
    return std::max(reading, 1e-9);
}

} // namespace leo::telemetry
