/**
 * @file
 * Implementation of sampling policies and the profiler.
 */

#include "telemetry/sampler.hh"

#include <algorithm>

#include "linalg/error.hh"
#include "obs/obs.hh"

namespace leo::telemetry
{

namespace
{

/** Registry instruments of the profiler (lazily registered). */
struct ProfilerObs
{
    obs::Counter probes =
        obs::Registry::global().counter(obs::names::kProfilerConfigsMeasured);
    obs::Counter sweeps =
        obs::Registry::global().counter(obs::names::kProfilerSweepsRun);
};

ProfilerObs &
profilerObs()
{
    static ProfilerObs o;
    return o;
}

} // namespace

void
Observations::push(const Sample &s)
{
    indices.push_back(s.configIndex);
    performance.push_back(s.heartbeatRate);
    power.push_back(s.powerWatts);
}

std::vector<std::size_t>
RandomSampler::select(std::size_t space_size, std::size_t budget,
                      stats::Rng &rng) const
{
    const std::size_t k = std::min(space_size, budget);
    return rng.sampleWithoutReplacement(space_size, k);
}

std::vector<std::size_t>
UniformGridSampler::select(std::size_t space_size, std::size_t budget,
                           stats::Rng &rng) const
{
    (void)rng;
    require(space_size > 0, "UniformGridSampler: empty space");
    const std::size_t k = std::min(space_size, budget);
    std::vector<std::size_t> idx;
    idx.reserve(k);
    if (k == 0)
        return idx;
    // Evenly spaced interior points: for n = 32, k = 6 the stride is
    // floor(32 / 6) = 5, yielding indices 4, 9, ..., 29 — cores
    // 5, 10, ..., 30 exactly as in Section 2.
    const std::size_t stride = std::max<std::size_t>(space_size / k, 1);
    for (std::size_t j = 1; j <= k; ++j) {
        const std::size_t i = std::min(j * stride, space_size) - 1;
        if (idx.empty() || i != idx.back())
            idx.push_back(i);
    }
    return idx;
}

Profiler::Profiler(const HeartbeatMonitor &monitor, const PowerMeter &meter)
    : monitor_(monitor), meter_(meter)
{
}

Observations
Profiler::measureAt(const workloads::ApplicationBehavior &model,
                    const platform::ConfigSpace &space,
                    const std::vector<std::size_t> &indices,
                    stats::Rng &rng) const
{
    obs::Span span(obs::names::kProfilerMeasureSpan, "telemetry");
    span.arg("probes", static_cast<double>(indices.size()));
    profilerObs().probes.add(indices.size());

    Observations obs;
    obs.indices = indices;
    obs.performance = linalg::Vector(indices.size());
    obs.power = linalg::Vector(indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
        require(indices[j] < space.size(),
                "Profiler: configuration index out of range");
        const platform::ResourceAssignment &ra =
            space.assignment(indices[j]);
        obs.performance[j] = monitor_.measureRate(model, ra, rng);
        obs.power[j] = meter_.read(model, ra, rng);
    }
    return obs;
}

Observations
Profiler::sample(const workloads::ApplicationBehavior &model,
                 const platform::ConfigSpace &space,
                 const SamplingPolicy &policy, std::size_t budget,
                 stats::Rng &rng) const
{
    profilerObs().sweeps.add(1);
    const std::vector<std::size_t> idx =
        policy.select(space.size(), budget, rng);
    return measureAt(model, space, idx, rng);
}

} // namespace leo::telemetry
