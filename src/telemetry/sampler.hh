/**
 * @file
 * Configuration sampling policies.
 *
 * Section 6.3: "We allow LEO and the online method to sample randomly
 * select 20 configurations each." Section 2's motivational example
 * instead observes 6 uniformly spaced core counts (5, 10, ..., 30).
 * Both policies are provided, plus the profiler that actually takes
 * the measurements.
 */

#ifndef LEO_TELEMETRY_SAMPLER_HH
#define LEO_TELEMETRY_SAMPLER_HH

#include <memory>
#include <vector>

#include "platform/config_space.hh"
#include "stats/rng.hh"
#include "telemetry/measurement.hh"
#include "telemetry/meters.hh"

namespace leo::telemetry
{

/** Abstract policy choosing which configurations to observe. */
class SamplingPolicy
{
  public:
    virtual ~SamplingPolicy() = default;

    /**
     * Choose configurations to observe.
     *
     * @param space_size Number of configurations n.
     * @param budget     Number of observations allowed.
     * @param rng        Randomness source.
     * @return Distinct configuration indices (size <= budget).
     */
    virtual std::vector<std::size_t> select(std::size_t space_size,
                                            std::size_t budget,
                                            stats::Rng &rng) const = 0;
};

/** Uniformly random distinct configurations (the Section 6 policy). */
class RandomSampler : public SamplingPolicy
{
  public:
    std::vector<std::size_t> select(std::size_t space_size,
                                    std::size_t budget,
                                    stats::Rng &rng) const override;
};

/**
 * Evenly spaced configurations (the Section 2 policy: 5, 10, ..., 30
 * of 32). Deterministic; ignores the RNG.
 */
class UniformGridSampler : public SamplingPolicy
{
  public:
    std::vector<std::size_t> select(std::size_t space_size,
                                    std::size_t budget,
                                    stats::Rng &rng) const override;
};

/**
 * Runs the target application in chosen configurations and collects
 * its heartbeat rate and wall power — the online measurement step of
 * LEO's runtime.
 */
class Profiler
{
  public:
    /**
     * @param monitor Heartbeat monitor (borrowed).
     * @param meter   Power meter (borrowed).
     */
    Profiler(const HeartbeatMonitor &monitor, const PowerMeter &meter);

    /**
     * Measure the application at specific configuration indices.
     *
     * @param model   The application.
     * @param space   The configuration space.
     * @param indices Which configurations to visit.
     * @param rng     Noise source.
     */
    Observations measureAt(const workloads::ApplicationBehavior &model,
                           const platform::ConfigSpace &space,
                           const std::vector<std::size_t> &indices,
                           stats::Rng &rng) const;

    /**
     * Select with a policy, then measure.
     *
     * @param model  The application.
     * @param space  The configuration space.
     * @param policy Sampling policy.
     * @param budget Number of observations.
     * @param rng    Randomness source (selection and noise).
     */
    Observations sample(const workloads::ApplicationBehavior &model,
                        const platform::ConfigSpace &space,
                        const SamplingPolicy &policy, std::size_t budget,
                        stats::Rng &rng) const;

  private:
    const HeartbeatMonitor &monitor_;
    const PowerMeter &meter_;
};

} // namespace leo::telemetry

#endif // LEO_TELEMETRY_SAMPLER_HH
