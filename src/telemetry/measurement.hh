/**
 * @file
 * Measurement types shared by the telemetry layer and the estimators.
 */

#ifndef LEO_TELEMETRY_MEASUREMENT_HH
#define LEO_TELEMETRY_MEASUREMENT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector.hh"

namespace leo::telemetry
{

/** One measured sample of a running application in one configuration. */
struct Sample
{
    /** Index of the configuration that was measured. */
    std::size_t configIndex = 0;
    /** Measured heartbeat rate (heartbeats/s). */
    double heartbeatRate = 0.0;
    /** Measured wall power (Watts). */
    double powerWatts = 0.0;
};

/**
 * A set of observations of the target application: the paper's
 * Omega_M (observed configuration indices) together with the measured
 * values at those indices.
 */
struct Observations
{
    /** Observed configuration indices Omega. */
    std::vector<std::size_t> indices;
    /** Measured heartbeat rates, aligned with indices. */
    linalg::Vector performance;
    /** Measured wall power, aligned with indices. */
    linalg::Vector power;

    /** @return |Omega|, the number of observations. */
    std::size_t size() const { return indices.size(); }

    /** @return True iff no configuration has been observed. */
    bool empty() const { return indices.empty(); }

    /** Append one sample. */
    void push(const Sample &s);

    /**
     * Stable content hash of the observation set, for use as a
     * fit-cache key.
     *
     * The hash identifies the *information* the estimators will see
     * after estimators::sanitizeObservations, not the byte layout of
     * this struct:
     *  - samples are hashed as sorted (index, perf bits, power bits)
     *    triples, so permuting the sample order — including the
     *    arrival order of duplicate indices that sanitization later
     *    merges — leaves the hash unchanged;
     *  - values sanitization rejects (non-finite or <= 0) hash as a
     *    zero sentinel, and samples rejected for both metrics (or
     *    with an out-of-range index) are dropped entirely, so
     *    observation sets differing only in rejected readings
     *    collide — they produce the same fit.
     *
     * Surviving values contribute their exact IEEE-754 bit pattern:
     * any last-ULP measurement difference changes the hash (a cache
     * key must never alias two different fits).
     *
     * @param space_size Number of configurations (index range).
     * @return 64-bit FNV-1a over the sorted triples.
     */
    std::uint64_t contentHash(std::size_t space_size) const;
};

} // namespace leo::telemetry

#endif // LEO_TELEMETRY_MEASUREMENT_HH
