/**
 * @file
 * Measurement types shared by the telemetry layer and the estimators.
 */

#ifndef LEO_TELEMETRY_MEASUREMENT_HH
#define LEO_TELEMETRY_MEASUREMENT_HH

#include <cstddef>
#include <vector>

#include "linalg/vector.hh"

namespace leo::telemetry
{

/** One measured sample of a running application in one configuration. */
struct Sample
{
    /** Index of the configuration that was measured. */
    std::size_t configIndex = 0;
    /** Measured heartbeat rate (heartbeats/s). */
    double heartbeatRate = 0.0;
    /** Measured wall power (Watts). */
    double powerWatts = 0.0;
};

/**
 * A set of observations of the target application: the paper's
 * Omega_M (observed configuration indices) together with the measured
 * values at those indices.
 */
struct Observations
{
    /** Observed configuration indices Omega. */
    std::vector<std::size_t> indices;
    /** Measured heartbeat rates, aligned with indices. */
    linalg::Vector performance;
    /** Measured wall power, aligned with indices. */
    linalg::Vector power;

    /** @return |Omega|, the number of observations. */
    std::size_t size() const { return indices.size(); }

    /** @return True iff no configuration has been observed. */
    bool empty() const { return indices.empty(); }

    /** Append one sample. */
    void push(const Sample &s);
};

} // namespace leo::telemetry

#endif // LEO_TELEMETRY_MEASUREMENT_HH
