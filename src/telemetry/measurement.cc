/**
 * @file
 * Observation content hashing (the fit-cache key).
 */

#include "telemetry/measurement.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

namespace leo::telemetry
{

namespace
{

/** @return The value's bit pattern, or 0 when sanitization would
 *  reject it (non-finite or <= 0 — note +0.0's pattern is also 0,
 *  consistently: an exact zero is a rejected dropout either way). */
std::uint64_t
valueKey(double v)
{
    if (!std::isfinite(v) || v <= 0.0)
        return 0;
    return std::bit_cast<std::uint64_t>(v);
}

/** 64-bit FNV-1a step over one u64, low byte first. */
void
fnv1a(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xffu;
        h *= 1099511628211ull;
    }
}

} // namespace

std::uint64_t
Observations::contentHash(std::size_t space_size) const
{
    // One triple per sample that carries any usable information;
    // sorting makes the hash a function of the sample *multiset*.
    std::vector<std::array<std::uint64_t, 3>> triples;
    triples.reserve(indices.size());
    for (std::size_t j = 0; j < indices.size(); ++j) {
        if (indices[j] >= space_size)
            continue;
        const std::uint64_t pk = valueKey(performance[j]);
        const std::uint64_t wk = valueKey(power[j]);
        if (pk == 0 && wk == 0)
            continue;
        triples.push_back({indices[j], pk, wk});
    }
    std::sort(triples.begin(), triples.end());

    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    fnv1a(h, triples.size());
    for (const auto &t : triples) {
        fnv1a(h, t[0]);
        fnv1a(h, t[1]);
        fnv1a(h, t[2]);
    }
    return h;
}

} // namespace leo::telemetry
