/**
 * @file
 * Scenario materialization and closed-loop runners.
 *
 * A Scenario binds a Spec (scenario/spec.hh) to a concrete machine
 * and configuration space: it builds the workload backend (analytic
 * model, phase schedule, or trace replay), resolves the performance
 * demand, precomputes per-phase ground truth for oracle controllers,
 * and exposes the per-frame behavior the runners drive.
 *
 * Two runners consume a Scenario:
 *
 *  - runScenario() is the single-tenant closed loop. It mirrors
 *    runtime::runPhased frame for frame — same controller, same
 *    telemetry, same RNG consumption order — with the scenario's
 *    fault decorators wrapped around the meters and the scenario's
 *    change-point policy applied to the controller. With a fault-free
 *    spec and the policy Off it is bitwise identical to runPhased on
 *    the equivalent PhasedApplication (tested).
 *
 *  - runScenarioService() drives the scenario through leo::service:
 *    tenants arrive per the spec's ArrivalSpec, every tenant replays
 *    the same workload with its own measurement-noise and fault
 *    streams, and the per-tenant config schedules come back for
 *    determinism assertions. An optional mid-run snapshot round-trip
 *    (save into a fresh service, restore, continue) exercises the
 *    service's resume-bit-for-bit contract under trace workloads.
 */

#ifndef LEO_SCENARIO_SCENARIO_HH
#define LEO_SCENARIO_SCENARIO_HH

#include <memory>
#include <vector>

#include "platform/machine.hh"
#include "runtime/phased_run.hh"
#include "scenario/spec.hh"
#include "service/service.hh"
#include "workloads/ground_truth.hh"
#include "workloads/trace.hh"

namespace leo::scenario
{

/**
 * A Spec materialized against one machine + configuration space.
 * Borrows both; they must outlive the scenario.
 */
class Scenario
{
  public:
    /**
     * @param spec    The declarative scenario.
     * @param machine The machine it runs on.
     * @param space   The configuration space the controller actuates.
     * @throws leo::FatalError when the spec cannot materialize (an
     *         unknown application, a Phased spec without phases, a
     *         Trace spec without a trace, a trace row outside the
     *         space).
     */
    Scenario(Spec spec, const platform::Machine &machine,
             const platform::ConfigSpace &space);

    /** @return The spec this scenario was built from. */
    const Spec &spec() const { return spec_; }
    /** @return The machine. */
    const platform::Machine &machine() const { return machine_; }
    /** @return The configuration space. */
    const platform::ConfigSpace &space() const { return space_; }

    /** Resolved performance demand (auto-resolved when the spec said
     *  0: half the peak rate of the first phase/segment). */
    double targetRate() const { return target_; }

    /** @return Frames the scenario runs. */
    std::size_t totalFrames() const { return total_frames_; }
    /** @return Number of phases (trace: segments). */
    std::size_t numPhases() const { return truths_.size(); }
    /** @return Phase index containing a global frame. */
    std::size_t phaseIndexAt(std::size_t frame) const;

    /**
     * The behavior active at a frame. For Trace workloads this moves
     * the replay's work-unit clock to the frame (hence non-const) —
     * frames map 1:1 to work units.
     */
    const workloads::ApplicationBehavior &
    behaviorAt(std::size_t frame);

    /** True per-config vectors of one phase (oracle feed). */
    const workloads::GroundTruth &truth(std::size_t phase) const;

    /**
     * Controller options with the scenario applied: the resolved
     * demand, the machine's idle power, and the spec's change-point
     * policy/method. Everything else passes through from @p base.
     */
    runtime::ControllerOptions controllerOptions(
        runtime::ControllerOptions base = {}) const;

  private:
    Spec spec_;
    const platform::Machine &machine_;
    const platform::ConfigSpace &space_;
    double target_ = 0.0;
    std::size_t total_frames_ = 0;
    /** Analytic/Phased backends: one model per phase. */
    std::vector<std::unique_ptr<workloads::ApplicationModel>> models_;
    /** Frame count per phase (Analytic/Phased). */
    std::vector<std::size_t> phase_frames_;
    /** Trace backend (Trace workloads only). */
    std::unique_ptr<workloads::TraceApplicationModel> trace_;
    std::vector<workloads::GroundTruth> truths_;
};

/** Result of a single-tenant scenario run. */
struct RunResult
{
    /** The full frame trace (runtime/phased_run.hh record). */
    std::vector<runtime::FrameRecord> trace;
    /** Energy per phase (Joules). */
    std::vector<double> phaseEnergy;
    /** Total energy (Joules). */
    double totalEnergy = 0.0;
    /** Fraction of frames that met the real-time demand. */
    double deadlineHitRate = 0.0;
    /** Controller re-estimations (drift or change-point). */
    std::size_t reestimations = 0;
    /** Change-points the controller detected (policy != Off). */
    std::size_t changePoints = 0;
    /** Telemetry readings the fault scenario corrupted. */
    std::size_t faultsInjected = 0;
};

/**
 * Run a scenario to completion under one controller.
 *
 * @param scenario  The materialized scenario (its trace clock is
 *                  advanced; re-runnable — each run re-walks frames
 *                  from 0).
 * @param estimator Estimation approach; nullptr runs the oracle fed
 *                  with truth() at every phase boundary.
 * @param prior     Offline profiles for the estimator.
 * @param base      Controller options; the scenario's demand, idle
 *                  power and change-point policy are applied on top.
 */
RunResult runScenario(Scenario &scenario,
                      const estimators::Estimator *estimator,
                      const telemetry::ProfileStore &prior,
                      runtime::ControllerOptions base = {});

/** Knobs of the service-driven runner. */
struct ServiceRunOptions
{
    /** Windows to drive (0 = the spec's frame count). */
    std::size_t windows = 0;
    /** After this many windows, snapshot the service, restore into a
     *  fresh one and continue there (0 = never). */
    std::size_t snapshotAtWindow = 0;
    /** Service knobs; the controller template inherits the
     *  scenario's demand and change-point policy. */
    service::ServiceOptions service;
};

/** Result of a service-driven scenario run. */
struct ServiceRunResult
{
    /** Tenant ids in admission order. */
    std::vector<std::uint64_t> tenants;
    /** Config schedule per tenant (admission order); tenant t's
     *  schedule starts at its admission window. */
    std::vector<std::vector<std::size_t>> schedules;
    /** Windows driven. */
    std::size_t windowsProcessed = 0;
    /** True iff the snapshot round-trip ran. */
    bool restored = false;
};

/**
 * Drive a scenario's tenant population through leo::service.
 *
 * Tenant t is admitted at window t * spacingWindows with demand
 * target * (1 + rateSpread * t / tenants), its own seed and its own
 * fault stream. Deterministic: the schedules depend only on the spec
 * and the service options, never on shard or thread count.
 */
ServiceRunResult runScenarioService(
    Scenario &scenario, const estimators::LeoEstimator &estimator,
    std::shared_ptr<const telemetry::ProfileStore> prior,
    parallel::ThreadPool &pool, ServiceRunOptions options = {});

} // namespace leo::scenario

#endif // LEO_SCENARIO_SCENARIO_HH
