/**
 * @file
 * Implementation of scenario materialization and the runners.
 */

#include "scenario/scenario.hh"

#include <utility>

#include "faults/faults.hh"
#include "linalg/error.hh"
#include "workloads/suite.hh"

namespace leo::scenario
{

namespace
{

/** Half the behavior's peak heartbeat rate over the space. */
double
autoTarget(const workloads::ApplicationBehavior &behavior,
           const platform::ConfigSpace &space)
{
    double peak = 0.0;
    for (std::size_t c = 0; c < space.size(); ++c) {
        const double r = behavior.heartbeatRate(space.assignment(c));
        if (r > peak)
            peak = r;
    }
    require(peak > 0.0, "scenario: workload has zero peak rate");
    return 0.5 * peak;
}

} // namespace

Scenario::Scenario(Spec spec, const platform::Machine &machine,
                   const platform::ConfigSpace &space)
    : spec_(std::move(spec)), machine_(machine), space_(space)
{
    switch (spec_.workload) {
      case WorkloadKind::Analytic: {
        models_.push_back(
            std::make_unique<workloads::ApplicationModel>(
                workloads::profileByName(spec_.app), machine_));
        phase_frames_.push_back(spec_.frames);
        break;
      }
      case WorkloadKind::Phased: {
        require(!spec_.phases.empty(),
                "scenario: phased workload needs at least one phase");
        for (const PhaseSpec &ph : spec_.phases) {
            workloads::ApplicationProfile profile =
                workloads::profileByName(ph.app);
            profile.baseHeartbeatRate *= ph.scale;
            models_.push_back(
                std::make_unique<workloads::ApplicationModel>(
                    profile, machine_));
            phase_frames_.push_back(ph.frames);
        }
        break;
      }
      case WorkloadKind::Trace: {
        require(!spec_.traceText.empty() || !spec_.traceFile.empty(),
                "scenario: trace workload needs trace_inline or "
                "trace_file");
        const workloads::TraceTable table =
            spec_.traceText.empty()
                ? workloads::TraceTable::fromFile(spec_.traceFile)
                : workloads::TraceTable::fromString(spec_.traceText);
        workloads::TraceModelOptions topt;
        topt.idlePowerWatts = machine_.spec().idleSystemPowerW;
        topt.name = spec_.name;
        trace_ = std::make_unique<workloads::TraceApplicationModel>(
            table, space_, topt);
        break;
      }
    }

    if (trace_ != nullptr) {
        total_frames_ = spec_.frames;
        for (std::size_t s = 0; s < trace_->numSegments(); ++s)
            truths_.push_back(workloads::GroundTruth{
                trace_->segmentPerformance(s),
                trace_->segmentPower(s)});
    } else {
        for (std::size_t f : phase_frames_)
            total_frames_ += f;
        for (const auto &model : models_)
            truths_.push_back(
                workloads::computeGroundTruth(*model, space_));
    }
    require(total_frames_ > 0, "scenario: zero frames");

    target_ = spec_.targetRate > 0.0
                  ? spec_.targetRate
                  : autoTarget(trace_ != nullptr
                                   ? static_cast<const workloads::
                                         ApplicationBehavior &>(
                                         *trace_)
                                   : *models_.front(),
                               space_);
}

std::size_t
Scenario::phaseIndexAt(std::size_t frame) const
{
    if (trace_ != nullptr)
        return trace_->segmentAt(frame);
    std::size_t start = 0;
    for (std::size_t p = 0; p < phase_frames_.size(); ++p) {
        start += phase_frames_[p];
        if (frame < start)
            return p;
    }
    return phase_frames_.size() - 1;
}

const workloads::ApplicationBehavior &
Scenario::behaviorAt(std::size_t frame)
{
    if (trace_ != nullptr) {
        trace_->setWorkUnit(frame);
        return *trace_;
    }
    return *models_[phaseIndexAt(frame)];
}

const workloads::GroundTruth &
Scenario::truth(std::size_t phase) const
{
    require(phase < truths_.size(),
            "scenario: phase index out of range");
    return truths_[phase];
}

runtime::ControllerOptions
Scenario::controllerOptions(runtime::ControllerOptions base) const
{
    base.targetRate = target_;
    base.idlePower = machine_.spec().idleSystemPowerW;
    base.changePointPolicy = spec_.changePointPolicy;
    base.changePoint.method = spec_.changePointMethod;
    return base;
}

RunResult
runScenario(Scenario &scenario,
            const estimators::Estimator *estimator,
            const telemetry::ProfileStore &prior,
            runtime::ControllerOptions base)
{
    const Spec &spec = scenario.spec();
    const platform::ConfigSpace &space = scenario.space();
    const runtime::ControllerOptions options =
        scenario.controllerOptions(base);
    runtime::EnergyController controller(space, estimator, prior,
                                         options);

    // Fault decorators over the standard meters: with the spec's
    // fault scenario all-zero they are bitwise identical to the bare
    // meters (faults draw from a separate stream), which is what
    // makes this loop 0-ULP equivalent to runtime::runPhased.
    const telemetry::HeartbeatMonitor base_monitor;
    const telemetry::WattsUpMeter base_meter;
    const faults::FaultyHeartbeatMonitor monitor(base_monitor,
                                                 spec.faults);
    const faults::FaultyPowerMeter meter(base_meter, spec.faults);

    stats::Rng rng(spec.seed);

    RunResult result;
    result.phaseEnergy.assign(scenario.numPhases(), 0.0);

    const double period = 1.0 / options.targetRate;
    const double idle_power = scenario.machine().spec().idleSystemPowerW;
    std::size_t deadline_hits = 0;
    std::size_t last_phase = static_cast<std::size_t>(-1);

    const std::size_t total = scenario.totalFrames();
    for (std::size_t f = 0; f < total; ++f) {
        const std::size_t phase = scenario.phaseIndexAt(f);
        const workloads::ApplicationBehavior &model =
            scenario.behaviorAt(f);

        if (estimator == nullptr && phase != last_phase) {
            // Oracle: perfect knowledge arrives at the boundary.
            const workloads::GroundTruth &t = scenario.truth(phase);
            controller.setEstimates(t.performance, t.power);
        }
        last_phase = phase;

        const bool sampling =
            controller.state() ==
            runtime::EnergyController::State::Sampling;
        const std::size_t cfg = controller.nextConfig(rng);
        const platform::ResourceAssignment &ra =
            space.assignment(cfg);

        telemetry::Sample s;
        s.configIndex = cfg;
        s.heartbeatRate = monitor.measureRate(model, ra, rng);
        s.powerWatts = meter.read(model, ra, rng);
        controller.recordMeasurement(s);

        const double true_rate = model.heartbeatRate(ra);
        const double true_power = model.powerWatts(ra);
        invariant(true_rate > 0.0, "runScenario: zero true rate");
        const double busy = 1.0 / true_rate;
        double energy = true_power * busy;
        if (busy < period)
            energy += idle_power * (period - busy);

        runtime::FrameRecord rec;
        rec.frame = f;
        rec.phase = phase;
        rec.configIndex = cfg;
        rec.rate = true_rate;
        rec.powerWatts = true_power;
        rec.energyJoules = energy;
        rec.normalizedPerformance = true_rate / options.targetRate;
        rec.sampling = sampling;
        result.trace.push_back(rec);

        result.phaseEnergy[phase] += energy;
        result.totalEnergy += energy;
        if (busy <= period * (1.0 + 1e-9))
            ++deadline_hits;
    }

    result.deadlineHitRate =
        static_cast<double>(deadline_hits) /
        static_cast<double>(total);
    result.reestimations = controller.reestimations();
    result.changePoints = controller.changePointsDetected();
    result.faultsInjected = monitor.injector().faultsInjected() +
                            meter.injector().faultsInjected();
    return result;
}

ServiceRunResult
runScenarioService(
    Scenario &scenario, const estimators::LeoEstimator &estimator,
    std::shared_ptr<const telemetry::ProfileStore> prior,
    parallel::ThreadPool &pool, ServiceRunOptions options)
{
    const Spec &spec = scenario.spec();
    service::ServiceOptions sopts = options.service;
    sopts.controller = scenario.controllerOptions(sopts.controller);

    auto svc = std::make_unique<service::Service>(
        scenario.space(), estimator, prior, pool, sopts);

    const std::size_t windows =
        options.windows != 0 ? options.windows : spec.frames;
    const std::size_t tenants = spec.arrivals.tenants;
    require(tenants > 0, "runScenarioService: zero tenants");
    const std::string app_label = scenario.behaviorAt(0).name();

    const telemetry::HeartbeatMonitor base_monitor;
    const telemetry::WattsUpMeter base_meter;
    // Per-tenant fault decorators and measurement-noise streams:
    // tenant t's samples are a pure function of (spec, t), so
    // schedules are independent of tenant count and drive order.
    std::vector<std::unique_ptr<faults::FaultyHeartbeatMonitor>>
        monitors;
    std::vector<std::unique_ptr<faults::FaultyPowerMeter>> meters;
    std::vector<stats::Rng> rngs;

    ServiceRunResult out;
    out.schedules.resize(tenants);
    std::size_t admitted = 0;

    for (std::size_t w = 0; w < windows; ++w) {
        while (admitted < tenants &&
               w >= admitted * spec.arrivals.spacingWindows) {
            service::TenantConfig tc;
            tc.appId = app_label;
            tc.targetRate =
                scenario.targetRate() *
                (1.0 + spec.arrivals.rateSpread *
                           static_cast<double>(admitted) /
                           static_cast<double>(tenants));
            tc.seed = spec.seed + admitted;
            const auto id = svc->admit(tc);
            require(id.has_value(),
                    "runScenarioService: admission rejected");
            out.tenants.push_back(*id);
            faults::FaultScenario tenant_faults = spec.faults;
            tenant_faults.seed += admitted;
            monitors.push_back(
                std::make_unique<faults::FaultyHeartbeatMonitor>(
                    base_monitor, tenant_faults));
            meters.push_back(
                std::make_unique<faults::FaultyPowerMeter>(
                    base_meter, tenant_faults));
            rngs.emplace_back(spec.seed +
                              0x9e3779b97f4a7c15ull *
                                  (admitted + 1));
            ++admitted;
        }

        const workloads::ApplicationBehavior &behavior =
            scenario.behaviorAt(w);
        for (std::size_t t = 0; t < out.tenants.size(); ++t) {
            const std::size_t cfg = svc->nextConfig(out.tenants[t]);
            out.schedules[t].push_back(cfg);
            const platform::ResourceAssignment &ra =
                scenario.space().assignment(cfg);
            telemetry::Sample s;
            s.configIndex = cfg;
            s.heartbeatRate =
                monitors[t]->measureRate(behavior, ra, rngs[t]);
            s.powerWatts = meters[t]->read(behavior, ra, rngs[t]);
            svc->submit(out.tenants[t], s);
        }
        svc->tick();
        ++out.windowsProcessed;

        if (options.snapshotAtWindow != 0 &&
            w + 1 == options.snapshotAtWindow) {
            linalg::ByteWriter bw;
            svc->saveSnapshot(bw);
            auto fresh = std::make_unique<service::Service>(
                scenario.space(), estimator, prior, pool, sopts);
            linalg::ByteReader br(bw.bytes());
            require(fresh->restoreSnapshot(br),
                    "runScenarioService: snapshot restore failed");
            svc = std::move(fresh);
            out.restored = true;
        }
    }
    return out;
}

} // namespace leo::scenario
