/**
 * @file
 * The scenario DSL: declarative workload x fault x phase x arrival
 * compositions.
 *
 * A Spec is a plain-value description of one closed-loop experiment:
 * which workload runs (an analytic suite application, a phase
 * schedule over scaled applications, or a replayed trace), which
 * sensor-fault scenario corrupts its telemetry, what performance
 * demand it paces, how tenants arrive when run through the service,
 * and which controller adaptation policy watches for phase changes.
 * Specs parse from a small line-based text grammar or from JSON,
 * render back to canonical text (round-trip stable), and expand into
 * combinatorial grids — so robustness/property tests and the
 * change-point bench enumerate generated scenarios instead of
 * hand-written ones.
 *
 * Text grammar (one directive per line; '#' comments; CRLF ok):
 *
 *     name drifting_load
 *     workload phased              # analytic | phased | trace
 *     app x264                     # suite application (analytic)
 *     target 4.0                   # heartbeats/s (0 = auto)
 *     frames 240                   # closed-loop windows
 *     seed 42                      # run RNG seed
 *     changepoint coldrefit        # off | coldrefit | priorreset
 *     fault nan=0.05 outlier=0.05 outlier_scale=25 seed=99
 *     phase x264 frames=60 scale=1.0
 *     phase x264 frames=60 scale=0.7
 *     tenants 4 spacing=8 rate_spread=0.2
 *     trace_file examples/traces/two_phase.csv
 *     trace_inline <<END          # inline trace text until END
 *       segment,40
 *       0,1.0,100
 *     END
 *
 * JSON uses the same keys: {"name": ..., "workload": "phased",
 * "target": 4.0, "phases": [{"app": "x264", "frames": 60,
 * "scale": 1.0}], "fault": {"nan": 0.05}, "tenants": {"count": 4,
 * "spacing": 8}}. A document whose first non-space character is '{'
 * parses as JSON.
 *
 * Grid expansion (expandGrid) takes a base Spec and a list of axes —
 * each a directive key plus the values it sweeps — and produces the
 * cross product, naming each cell "<base>/<key>=<value>/...". Axis
 * keys route through the same setter as the text grammar, so
 * anything the grammar can say, a grid can sweep.
 */

#ifndef LEO_SCENARIO_SPEC_HH
#define LEO_SCENARIO_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "faults/faults.hh"
#include "runtime/changepoint.hh"

namespace leo::scenario
{

/** Which workload backend a scenario runs. */
enum class WorkloadKind
{
    Analytic, //!< One suite application, stationary.
    Phased,   //!< A schedule of scaled applications.
    Trace     //!< A replayed TraceTable.
};

/** One phase of a Phased workload. */
struct PhaseSpec
{
    /** Suite application the phase runs. */
    std::string app = "x264";
    /** Multiplier on the application's base heartbeat rate: > 1
     *  models the work getting lighter, < 1 a load spike. */
    double scale = 1.0;
    /** Frames the phase lasts. */
    std::size_t frames = 0;
};

/** Tenant arrival pattern for service-driven runs. */
struct ArrivalSpec
{
    /** Tenants admitted over the run. */
    std::size_t tenants = 1;
    /** Windows between consecutive admissions (0 = all at once). */
    std::size_t spacingWindows = 0;
    /** Relative spread of per-tenant target rates around the
     *  scenario target: tenant t demands
     *  target * (1 + rateSpread * t / tenants). */
    double rateSpread = 0.0;
};

/** One declarative scenario. */
struct Spec
{
    /** Scenario name (labels, bench rows, grid cells). */
    std::string name = "scenario";
    /** Workload backend. */
    WorkloadKind workload = WorkloadKind::Analytic;
    /** Application for Analytic workloads. */
    std::string app = "x264";
    /** Phase schedule for Phased workloads. */
    std::vector<PhaseSpec> phases;
    /** Trace file path for Trace workloads (resolved at
     *  materialization). */
    std::string traceFile;
    /** Inline trace text; takes precedence over traceFile. */
    std::string traceText;
    /** Performance demand in heartbeats/s; 0 = auto (half the
     *  workload's peak rate in its first phase/segment). */
    double targetRate = 0.0;
    /** Closed-loop windows to simulate. */
    std::size_t frames = 200;
    /** RNG seed of the run (probes + measurement noise). */
    std::uint64_t seed = 42;
    /** Sensor faults injected into the controller's telemetry. */
    faults::FaultScenario faults;
    /** Tenant arrivals for service-driven runs. */
    ArrivalSpec arrivals;
    /** Controller adaptation policy. */
    runtime::ChangePointPolicy changePointPolicy =
        runtime::ChangePointPolicy::Off;
    /** Detection algorithm when the policy is not Off. */
    runtime::ChangePointMethod changePointMethod =
        runtime::ChangePointMethod::Cusum;

    /**
     * Parse a spec from text or JSON (see the file comment).
     * @throws leo::FatalError on malformed input.
     */
    static Spec fromString(const std::string &text);

    /** Parse a spec file. @throws leo::FatalError when unreadable. */
    static Spec fromFile(const std::string &path);

    /** Canonical text rendering; fromString(toString()) == *this. */
    std::string toString() const;
};

/**
 * Apply one "key value" directive to a spec — the routine behind
 * both the text grammar and grid axes. Keys: name, workload, app,
 * target, frames, seed, changepoint, changepoint_method,
 * trace_file, tenants (count only), fault.<field> (nan, inf,
 * dropout, outlier, outlier_scale, stale, seed), phase_scale
 * (rescales every phase).
 *
 * @throws leo::FatalError on an unknown key or unparsable value.
 */
void setField(Spec &spec, const std::string &key,
              const std::string &value);

/** One grid axis: a directive key and the values it sweeps. */
struct GridAxis
{
    std::string key;
    std::vector<std::string> values;
};

/**
 * Cross product of the axes over a base spec. Cell names append
 * "/<key>=<value>" per axis, in axis order; cells inherit everything
 * else from the base. Axis order is significant only for naming.
 */
std::vector<Spec> expandGrid(const Spec &base,
                             const std::vector<GridAxis> &axes);

} // namespace leo::scenario

#endif // LEO_SCENARIO_SPEC_HH
