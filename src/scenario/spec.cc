#include "scenario/spec.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "linalg/error.hh"
#include "workloads/jsonish.hh"

namespace leo::scenario
{

namespace
{

/** Strip '#' comments and surrounding whitespace (CRLF tolerant). */
std::string
stripLine(const std::string &raw)
{
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos)
        line.erase(hash);
    const auto isSpace = [](char c) {
        return c == ' ' || c == '\t' || c == '\r';
    };
    std::size_t b = 0, e = line.size();
    while (b < e && isSpace(line[b]))
        ++b;
    while (e > b && isSpace(line[e - 1]))
        --e;
    return line.substr(b, e - b);
}

/** Split on runs of spaces/tabs. */
std::vector<std::string>
tokens(const std::string &line)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : line) {
        if (c == ' ' || c == '\t') {
            if (!cur.empty())
                out.push_back(std::exchange(cur, {}));
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

double
parseNum(const std::string &tok, const std::string &what)
{
    char *end = nullptr;
    const double x = std::strtod(tok.c_str(), &end);
    require(!tok.empty() && end != nullptr && *end == '\0' &&
                std::isfinite(x),
            "scenario: " + what + " '" + tok +
                "' is not a finite number");
    return x;
}

std::size_t
parseCount(const std::string &tok, const std::string &what)
{
    const double x = parseNum(tok, what);
    require(x >= 0.0 && x == std::floor(x),
            "scenario: " + what + " '" + tok +
                "' must be a non-negative integer");
    return static_cast<std::size_t>(x);
}

/** Split "key=value"; returns false when there is no '='. */
bool
splitKv(const std::string &tok, std::string *key, std::string *val)
{
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
        return false;
    *key = tok.substr(0, eq);
    *val = tok.substr(eq + 1);
    return true;
}

WorkloadKind
parseWorkload(const std::string &v)
{
    if (v == "analytic")
        return WorkloadKind::Analytic;
    if (v == "phased")
        return WorkloadKind::Phased;
    if (v == "trace")
        return WorkloadKind::Trace;
    fatal("scenario: unknown workload '" + v +
          "' (analytic | phased | trace)");
}

runtime::ChangePointPolicy
parsePolicy(const std::string &v)
{
    if (v == "off")
        return runtime::ChangePointPolicy::Off;
    if (v == "coldrefit")
        return runtime::ChangePointPolicy::ColdRefit;
    if (v == "priorreset")
        return runtime::ChangePointPolicy::PriorReset;
    fatal("scenario: unknown changepoint policy '" + v +
          "' (off | coldrefit | priorreset)");
}

runtime::ChangePointMethod
parseMethod(const std::string &v)
{
    if (v == "cusum")
        return runtime::ChangePointMethod::Cusum;
    if (v == "bayesian")
        return runtime::ChangePointMethod::Bayesian;
    fatal("scenario: unknown changepoint method '" + v +
          "' (cusum | bayesian)");
}

void
setFaultField(faults::FaultScenario &f, const std::string &key,
              const std::string &val)
{
    if (key == "nan")
        f.nanProb = parseNum(val, "fault nan");
    else if (key == "inf")
        f.infProb = parseNum(val, "fault inf");
    else if (key == "dropout")
        f.dropoutProb = parseNum(val, "fault dropout");
    else if (key == "outlier")
        f.outlierProb = parseNum(val, "fault outlier");
    else if (key == "outlier_scale")
        f.outlierScale = parseNum(val, "fault outlier_scale");
    else if (key == "stale")
        f.staleProb = parseNum(val, "fault stale");
    else if (key == "seed")
        f.seed = static_cast<std::uint64_t>(
            parseCount(val, "fault seed"));
    else
        fatal("scenario: unknown fault field '" + key + "'");
}

/** Round-trip-exact double rendering. */
std::string
fmtNum(double x)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

Spec
fromJsonDoc(const std::string &text)
{
    namespace js = workloads::jsonish;
    const js::Value doc = js::parse(text);
    require(doc.isObject(), "scenario: JSON root must be an object");
    Spec spec;
    for (const auto &[key, v] : doc.members()) {
        if (key == "name") {
            spec.name = v.asString();
        } else if (key == "workload") {
            spec.workload = parseWorkload(v.asString());
        } else if (key == "app") {
            spec.app = v.asString();
        } else if (key == "target") {
            spec.targetRate = v.asNumber();
        } else if (key == "frames") {
            spec.frames =
                static_cast<std::size_t>(v.asNumber());
        } else if (key == "seed") {
            spec.seed = static_cast<std::uint64_t>(v.asNumber());
        } else if (key == "changepoint") {
            spec.changePointPolicy = parsePolicy(v.asString());
        } else if (key == "changepoint_method") {
            spec.changePointMethod = parseMethod(v.asString());
        } else if (key == "trace_file") {
            spec.traceFile = v.asString();
        } else if (key == "trace_inline") {
            spec.traceText = v.asString();
        } else if (key == "phases") {
            for (const auto &pv : v.items()) {
                PhaseSpec ph;
                if (pv.has("app"))
                    ph.app = pv.at("app").asString();
                if (pv.has("scale"))
                    ph.scale = pv.at("scale").asNumber();
                require(pv.has("frames"),
                        "scenario: phase needs 'frames'");
                ph.frames = static_cast<std::size_t>(
                    pv.at("frames").asNumber());
                spec.phases.push_back(std::move(ph));
            }
        } else if (key == "fault") {
            for (const auto &[fk, fv] : v.members())
                setFaultField(spec.faults, fk,
                              fmtNum(fv.asNumber()));
        } else if (key == "tenants") {
            require(v.isObject(),
                    "scenario: 'tenants' must be an object");
            if (v.has("count"))
                spec.arrivals.tenants = static_cast<std::size_t>(
                    v.at("count").asNumber());
            if (v.has("spacing"))
                spec.arrivals.spacingWindows =
                    static_cast<std::size_t>(
                        v.at("spacing").asNumber());
            if (v.has("rate_spread"))
                spec.arrivals.rateSpread =
                    v.at("rate_spread").asNumber();
        } else {
            fatal("scenario: unknown JSON key '" + key + "'");
        }
    }
    return spec;
}

Spec
fromTextDoc(const std::string &text)
{
    Spec spec;
    std::stringstream ss(text);
    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(ss, raw)) {
        ++lineno;
        const std::string line = stripLine(raw);
        if (line.empty())
            continue;
        const auto toks = tokens(line);
        const std::string &dir = toks[0];
        const auto wantArg = [&](const char *what) -> const std::string & {
            require(toks.size() >= 2,
                    "scenario: line " + std::to_string(lineno) +
                        ": '" + dir + "' needs " + what);
            return toks[1];
        };
        if (dir == "phase") {
            PhaseSpec ph;
            ph.app = wantArg("an application name");
            bool have_frames = false;
            for (std::size_t i = 2; i < toks.size(); ++i) {
                std::string k, v;
                require(splitKv(toks[i], &k, &v),
                        "scenario: line " + std::to_string(lineno) +
                            ": phase options are key=value");
                if (k == "frames") {
                    ph.frames = parseCount(v, "phase frames");
                    have_frames = true;
                } else if (k == "scale") {
                    ph.scale = parseNum(v, "phase scale");
                } else {
                    fatal("scenario: line " +
                          std::to_string(lineno) +
                          ": unknown phase option '" + k + "'");
                }
            }
            require(have_frames && ph.frames > 0,
                    "scenario: line " + std::to_string(lineno) +
                        ": phase needs frames=<n> > 0");
            spec.phases.push_back(std::move(ph));
        } else if (dir == "fault") {
            for (std::size_t i = 1; i < toks.size(); ++i) {
                std::string k, v;
                require(splitKv(toks[i], &k, &v),
                        "scenario: line " + std::to_string(lineno) +
                            ": fault options are key=value");
                setFaultField(spec.faults, k, v);
            }
        } else if (dir == "tenants") {
            spec.arrivals.tenants =
                parseCount(wantArg("a tenant count"), "tenants");
            for (std::size_t i = 2; i < toks.size(); ++i) {
                std::string k, v;
                require(splitKv(toks[i], &k, &v),
                        "scenario: line " + std::to_string(lineno) +
                            ": tenants options are key=value");
                if (k == "spacing")
                    spec.arrivals.spacingWindows =
                        parseCount(v, "tenants spacing");
                else if (k == "rate_spread")
                    spec.arrivals.rateSpread =
                        parseNum(v, "tenants rate_spread");
                else
                    fatal("scenario: line " +
                          std::to_string(lineno) +
                          ": unknown tenants option '" + k + "'");
            }
        } else if (dir == "trace_inline") {
            const std::string &arg = wantArg("a <<DELIM marker");
            require(arg.size() > 2 && arg[0] == '<' && arg[1] == '<',
                    "scenario: line " + std::to_string(lineno) +
                        ": trace_inline needs <<DELIM");
            const std::string delim = arg.substr(2);
            std::string body;
            bool closed = false;
            while (std::getline(ss, raw)) {
                ++lineno;
                // Only CRLF-strip here: the body is raw trace text.
                if (!raw.empty() && raw.back() == '\r')
                    raw.pop_back();
                if (stripLine(raw) == delim) {
                    closed = true;
                    break;
                }
                body += raw;
                body += '\n';
            }
            require(closed, "scenario: unterminated trace_inline "
                            "(missing '" +
                                delim + "')");
            spec.traceText = std::move(body);
        } else {
            setField(spec, dir, wantArg("a value"));
        }
    }
    return spec;
}

} // namespace

void
setField(Spec &spec, const std::string &key,
         const std::string &value)
{
    if (key == "name") {
        spec.name = value;
    } else if (key == "workload") {
        spec.workload = parseWorkload(value);
    } else if (key == "app") {
        spec.app = value;
    } else if (key == "target") {
        spec.targetRate = parseNum(value, "target");
    } else if (key == "frames") {
        spec.frames = parseCount(value, "frames");
    } else if (key == "seed") {
        spec.seed =
            static_cast<std::uint64_t>(parseCount(value, "seed"));
    } else if (key == "changepoint") {
        spec.changePointPolicy = parsePolicy(value);
    } else if (key == "changepoint_method") {
        spec.changePointMethod = parseMethod(value);
    } else if (key == "trace_file") {
        spec.traceFile = value;
    } else if (key == "tenants") {
        spec.arrivals.tenants = parseCount(value, "tenants");
    } else if (key == "phase_scale") {
        const double s = parseNum(value, "phase_scale");
        for (PhaseSpec &ph : spec.phases)
            ph.scale *= s;
    } else if (key.size() > 6 && key.compare(0, 6, "fault.") == 0) {
        setFaultField(spec.faults, key.substr(6), value);
    } else {
        fatal("scenario: unknown directive '" + key + "'");
    }
}

Spec
Spec::fromString(const std::string &text)
{
    for (const char c : text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            continue;
        if (c == '{')
            return fromJsonDoc(text);
        break;
    }
    return fromTextDoc(text);
}

Spec
Spec::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "scenario: cannot read '" + path + "'");
    std::stringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

std::string
Spec::toString() const
{
    std::string out;
    out += "name " + name + "\n";
    out += "workload ";
    out += workload == WorkloadKind::Analytic ? "analytic"
           : workload == WorkloadKind::Phased ? "phased"
                                              : "trace";
    out += "\n";
    out += "app " + app + "\n";
    out += "target " + fmtNum(targetRate) + "\n";
    out += "frames " + std::to_string(frames) + "\n";
    out += "seed " + std::to_string(seed) + "\n";
    out += "changepoint ";
    out += changePointPolicy == runtime::ChangePointPolicy::Off
               ? "off"
           : changePointPolicy ==
                   runtime::ChangePointPolicy::ColdRefit
               ? "coldrefit"
               : "priorreset";
    out += "\n";
    if (changePointMethod != runtime::ChangePointMethod::Cusum)
        out += "changepoint_method bayesian\n";
    if (faults.enabled() ||
        faults.seed != faults::FaultScenario{}.seed) {
        out += "fault";
        if (faults.nanProb > 0.0)
            out += " nan=" + fmtNum(faults.nanProb);
        if (faults.infProb > 0.0)
            out += " inf=" + fmtNum(faults.infProb);
        if (faults.dropoutProb > 0.0)
            out += " dropout=" + fmtNum(faults.dropoutProb);
        if (faults.outlierProb > 0.0) {
            out += " outlier=" + fmtNum(faults.outlierProb);
            out += " outlier_scale=" + fmtNum(faults.outlierScale);
        }
        if (faults.staleProb > 0.0)
            out += " stale=" + fmtNum(faults.staleProb);
        if (faults.seed != faults::FaultScenario{}.seed)
            out += " seed=" + std::to_string(faults.seed);
        out += "\n";
    }
    for (const PhaseSpec &ph : phases) {
        out += "phase " + ph.app +
               " frames=" + std::to_string(ph.frames) +
               " scale=" + fmtNum(ph.scale) + "\n";
    }
    if (!traceFile.empty())
        out += "trace_file " + traceFile + "\n";
    if (!traceText.empty()) {
        out += "trace_inline <<END\n";
        out += traceText;
        if (traceText.back() != '\n')
            out += '\n';
        out += "END\n";
    }
    if (arrivals.tenants != 1 || arrivals.spacingWindows != 0 ||
        arrivals.rateSpread != 0.0) {
        out += "tenants " + std::to_string(arrivals.tenants);
        if (arrivals.spacingWindows != 0)
            out += " spacing=" +
                   std::to_string(arrivals.spacingWindows);
        if (arrivals.rateSpread != 0.0)
            out +=
                " rate_spread=" + fmtNum(arrivals.rateSpread);
        out += "\n";
    }
    return out;
}

std::vector<Spec>
expandGrid(const Spec &base, const std::vector<GridAxis> &axes)
{
    std::vector<Spec> cells{base};
    for (const GridAxis &axis : axes) {
        require(!axis.values.empty(),
                "scenario: grid axis '" + axis.key +
                    "' has no values");
        std::vector<Spec> next;
        next.reserve(cells.size() * axis.values.size());
        for (const Spec &cell : cells) {
            for (const std::string &v : axis.values) {
                Spec expanded = cell;
                setField(expanded, axis.key, v);
                expanded.name =
                    cell.name + "/" + axis.key + "=" + v;
                next.push_back(std::move(expanded));
            }
        }
        cells = std::move(next);
    }
    return cells;
}

} // namespace leo::scenario
