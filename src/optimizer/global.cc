/**
 * @file
 * Implementation of global multi-app co-scheduling.
 */

#include "optimizer/global.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"
#include "linalg/simplex.hh"
#include "obs/obs.hh"
#include "optimizer/pareto.hh"

namespace leo::optimizer
{

namespace
{

/** Registry instruments of the global planner (lazily registered). */
struct GlobalObs
{
    obs::Counter plans = obs::Registry::global().counter(
        obs::names::kOptimizerGlobalPlansComputed);
    obs::Counter infeasible = obs::Registry::global().counter(
        obs::names::kOptimizerGlobalPlansInfeasible);
};

GlobalObs &
globalObs()
{
    static GlobalObs o;
    return o;
}

/** One LP decision variable: app x frontier-config x interval. */
struct Var
{
    std::size_t app = 0;
    std::size_t frontierIndex = 0;
    std::size_t interval = 0;
    double rate = 0.0;
    double watts = 0.0;
};

/** Per-app working state shared by the global and greedy planners. */
struct AppState
{
    /** Positive-rate Pareto points, sorted by increasing rate. */
    std::vector<TradeoffPoint> frontier;
    /** Intervals this app may use: every i with ends[i] <= deadline. */
    std::size_t numIntervals = 0;
};

void
validate(const std::vector<TenantDemand> &demands, double idle_power,
         const GlobalPlanOptions &options)
{
    require(!demands.empty(), "planGlobalSchedule: no demands");
    require(idle_power >= 0.0,
            "planGlobalSchedule: idle power must be >= 0");
    require(!std::isnan(options.powerCapWatts),
            "planGlobalSchedule: power cap is NaN");
    for (const TenantDemand &d : demands) {
        require(d.performance.size() == d.power.size() &&
                    !d.performance.empty(),
                "planGlobalSchedule: bad estimate vectors");
        require(d.constraint.deadlineSeconds > 0.0,
                "planGlobalSchedule: deadline must be > 0");
        require(d.constraint.work >= 0.0,
                "planGlobalSchedule: work must be >= 0");
    }
}

/** Sorted unique deadlines = the interval end boundaries. */
std::vector<double>
intervalEnds(const std::vector<TenantDemand> &demands)
{
    std::vector<double> ends;
    ends.reserve(demands.size());
    for (const TenantDemand &d : demands)
        ends.push_back(d.constraint.deadlineSeconds);
    std::sort(ends.begin(), ends.end());
    ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
    return ends;
}

std::vector<AppState>
buildStates(const std::vector<TenantDemand> &demands,
            const std::vector<double> &ends)
{
    std::vector<AppState> states(demands.size());
    for (std::size_t a = 0; a < demands.size(); ++a) {
        std::vector<TradeoffPoint> frontier =
            paretoFrontier(demands[a].performance, demands[a].power);
        for (const TradeoffPoint &p : frontier)
            if (p.performance > 0.0)
                states[a].frontier.push_back(p);
        // Boundaries are the deadline values themselves, so the exact
        // comparison is reliable: every app gets >= 1 interval.
        std::size_t n = 0;
        while (n < ends.size() &&
               ends[n] <= demands[a].constraint.deadlineSeconds)
            ++n;
        states[a].numIntervals = n;
    }
    return states;
}

/** Variables for `apps`, app-major, frontier then interval order. */
std::vector<Var>
buildVars(const std::vector<std::size_t> &apps,
          const std::vector<AppState> &states)
{
    std::vector<Var> vars;
    for (std::size_t a : apps) {
        const AppState &st = states[a];
        for (std::size_t f = 0; f < st.frontier.size(); ++f)
            for (std::size_t i = 0; i < st.numIntervals; ++i)
                vars.push_back({a, f, i, st.frontier[f].performance,
                                st.frontier[f].power});
    }
    return vars;
}

/**
 * Build and solve the co-scheduling LP for `apps` against the given
 * per-interval time and (optional) cap-energy budgets. The same rows
 * serve the global planner (all apps, full budgets) and the greedy
 * baseline (one app, leftover budgets).
 */
linalg::LpSolution
solveCoSchedule(const std::vector<std::size_t> &apps,
                const std::vector<Var> &vars,
                const std::vector<TenantDemand> &demands,
                const std::vector<double> &time_budget,
                const std::vector<double> &cap_budget,
                double idle_power)
{
    using linalg::LinearProgram;
    using linalg::Vector;

    const std::size_t v_count = vars.size();
    LinearProgram lp(v_count);

    Vector c(v_count, 0.0);
    for (std::size_t v = 0; v < v_count; ++v)
        c[v] = vars[v].watts - idle_power;
    lp.setObjective(c);

    // Work equalities, one per app — deliberately kept even when an
    // app has no variables (zero-rate space) or zero work: the row
    // degenerates to 0 = W_a and the simplex now classifies that
    // correctly (redundant when W_a = 0, infeasible otherwise).
    for (std::size_t a : apps) {
        Vector row(v_count, 0.0);
        for (std::size_t v = 0; v < v_count; ++v)
            if (vars[v].app == a)
                row[v] = vars[v].rate;
        lp.addEquality(row, demands[a].constraint.work);
    }

    // Machine exclusivity: one app at a time within each interval.
    for (std::size_t i = 0; i < time_budget.size(); ++i) {
        Vector row(v_count, 0.0);
        for (std::size_t v = 0; v < v_count; ++v)
            if (vars[v].interval == i)
                row[v] = 1.0;
        lp.addInequality(row, std::max(time_budget[i], 0.0));
    }

    // Average-power cap per interval, as an energy-above-idle budget.
    for (std::size_t i = 0; i < cap_budget.size(); ++i) {
        Vector row(v_count, 0.0);
        for (std::size_t v = 0; v < v_count; ++v)
            if (vars[v].interval == i)
                row[v] = vars[v].watts - idle_power;
        lp.addInequality(row, cap_budget[i]);
    }

    return lp.solve();
}

/** Per-app usage extracted from an LP solution. */
struct AppUsage
{
    double busySeconds = 0.0;
    double activeEnergy = 0.0;
    /** Seconds per frontier point (frontier-aligned). */
    std::vector<double> configSeconds;
};

/**
 * Turn one app's usage into a Schedule covering [0, deadline]:
 * frontier parts in increasing-rate order, then the idle tail. Its
 * predictedEnergy spans the app's whole window, directly comparable
 * with planMinimalEnergy.
 */
Schedule
scheduleFromUsage(const AppState &st, const AppUsage &use,
                  double deadline, double idle_power)
{
    Schedule plan;
    for (std::size_t f = 0; f < st.frontier.size(); ++f)
        if (use.configSeconds[f] > 1e-12)
            plan.parts.push_back(
                {st.frontier[f].configIndex, use.configSeconds[f]});
    const double tail = std::max(deadline - use.busySeconds, 0.0);
    if (tail > 0.0)
        plan.parts.push_back({kIdleConfig, tail});
    plan.predictedEnergy = use.activeEnergy + idle_power * tail;
    plan.feasible = true;
    return plan;
}

/** Standalone best-effort fallback when the shared LP is infeasible. */
GlobalSchedule
fallbackPerApp(const std::vector<TenantDemand> &demands,
               double idle_power)
{
    globalObs().infeasible.add(1);
    GlobalSchedule g;
    g.feasible = false;
    g.predictedEnergy = 0.0;
    for (const TenantDemand &d : demands) {
        g.perTenant.push_back(planMinimalEnergy(
            d.performance, d.power, idle_power, d.constraint));
        g.predictedEnergy += g.perTenant.back().predictedEnergy;
    }
    return g;
}

} // namespace

GlobalSchedule
planGlobalSchedule(const std::vector<TenantDemand> &demands,
                   double idle_power, const GlobalPlanOptions &options)
{
    obs::Span span(obs::names::kOptimizerGlobalPlanSpan, "optimizer");
    span.arg("apps", static_cast<double>(demands.size()));
    globalObs().plans.add(1);
    validate(demands, idle_power, options);

    const bool capped = std::isfinite(options.powerCapWatts);
    if (demands.size() == 1 && !capped && !options.forceLp) {
        // Single app, no cap: the program *is* Equation (1); the hull
        // walk solves it exactly (and cheaper than the simplex).
        const TenantDemand &d = demands.front();
        GlobalSchedule g;
        g.perTenant.push_back(planMinimalEnergy(
            d.performance, d.power, idle_power, d.constraint));
        g.predictedEnergy = g.perTenant.back().predictedEnergy;
        g.feasible = g.perTenant.back().feasible;
        if (!g.feasible)
            globalObs().infeasible.add(1);
        return g;
    }

    const std::vector<double> ends = intervalEnds(demands);
    const std::vector<AppState> states = buildStates(demands, ends);

    std::vector<std::size_t> apps(demands.size());
    for (std::size_t a = 0; a < demands.size(); ++a)
        apps[a] = a;
    const std::vector<Var> vars = buildVars(apps, states);

    if (vars.empty()) {
        // No app can make progress anywhere. Feasible only if nobody
        // needs to: everything idles out its window.
        bool all_zero = true;
        for (const TenantDemand &d : demands)
            all_zero = all_zero && d.constraint.work == 0.0;
        if (!all_zero)
            return fallbackPerApp(demands, idle_power);
        GlobalSchedule g;
        for (const TenantDemand &d : demands) {
            Schedule s;
            s.parts.push_back(
                {kIdleConfig, d.constraint.deadlineSeconds});
            s.predictedEnergy =
                idle_power * d.constraint.deadlineSeconds;
            g.perTenant.push_back(std::move(s));
        }
        g.predictedEnergy = idle_power * ends.back();
        for (std::size_t i = 0; i < ends.size(); ++i)
            g.intervals.push_back({ends[i], 0.0, 0.0});
        return g;
    }

    std::vector<double> time_budget(ends.size());
    std::vector<double> cap_budget;
    for (std::size_t i = 0; i < ends.size(); ++i)
        time_budget[i] = ends[i] - (i == 0 ? 0.0 : ends[i - 1]);
    if (capped) {
        cap_budget.resize(ends.size());
        for (std::size_t i = 0; i < ends.size(); ++i)
            cap_budget[i] =
                (options.powerCapWatts - idle_power) * time_budget[i];
    }

    const linalg::LpSolution sol = solveCoSchedule(
        apps, vars, demands, time_budget, cap_budget, idle_power);
    if (sol.status != linalg::LpStatus::Optimal)
        return fallbackPerApp(demands, idle_power);

    std::vector<AppUsage> usage(demands.size());
    for (std::size_t a = 0; a < demands.size(); ++a)
        usage[a].configSeconds.assign(states[a].frontier.size(), 0.0);
    GlobalSchedule g;
    for (std::size_t i = 0; i < ends.size(); ++i)
        g.intervals.push_back({ends[i], 0.0, 0.0});

    double total_busy = 0.0;
    double total_active = 0.0;
    for (std::size_t v = 0; v < vars.size(); ++v) {
        const double secs = std::max(sol.x[v], 0.0);
        if (secs <= 0.0)
            continue;
        AppUsage &u = usage[vars[v].app];
        u.busySeconds += secs;
        u.activeEnergy += vars[v].watts * secs;
        u.configSeconds[vars[v].frontierIndex] += secs;
        g.intervals[vars[v].interval].busySeconds += secs;
        g.intervals[vars[v].interval].activeEnergyJoules +=
            vars[v].watts * secs;
        total_busy += secs;
        total_active += vars[v].watts * secs;
    }

    for (std::size_t a = 0; a < demands.size(); ++a)
        g.perTenant.push_back(scheduleFromUsage(
            states[a], usage[a],
            demands[a].constraint.deadlineSeconds, idle_power));
    g.predictedEnergy =
        total_active +
        idle_power * std::max(ends.back() - total_busy, 0.0);
    g.feasible = true;
    return g;
}

GlobalSchedule
planPerAppGreedy(const std::vector<TenantDemand> &demands,
                 double idle_power, const GlobalPlanOptions &options)
{
    validate(demands, idle_power, options);

    const bool capped = std::isfinite(options.powerCapWatts);
    const std::vector<double> ends = intervalEnds(demands);
    const std::vector<AppState> states = buildStates(demands, ends);

    std::vector<double> time_budget(ends.size());
    std::vector<double> cap_budget;
    for (std::size_t i = 0; i < ends.size(); ++i)
        time_budget[i] = ends[i] - (i == 0 ? 0.0 : ends[i - 1]);
    if (capped) {
        cap_budget.resize(ends.size());
        for (std::size_t i = 0; i < ends.size(); ++i)
            cap_budget[i] =
                (options.powerCapWatts - idle_power) * time_budget[i];
    }

    GlobalSchedule g;
    g.perTenant.resize(demands.size());
    for (std::size_t i = 0; i < ends.size(); ++i)
        g.intervals.push_back({ends[i], 0.0, 0.0});

    double total_busy = 0.0;
    double total_active = 0.0;
    for (std::size_t a = 0; a < demands.size(); ++a) {
        const TenantDemand &d = demands[a];
        if (states[a].frontier.empty()) {
            if (d.constraint.work == 0.0) {
                Schedule s;
                s.parts.push_back(
                    {kIdleConfig, d.constraint.deadlineSeconds});
                s.predictedEnergy =
                    idle_power * d.constraint.deadlineSeconds;
                g.perTenant[a] = std::move(s);
            } else {
                g.perTenant[a] = planMinimalEnergy(
                    d.performance, d.power, idle_power, d.constraint);
                g.feasible = false;
            }
            continue;
        }

        const std::vector<std::size_t> solo{a};
        const std::vector<Var> vars = buildVars(solo, states);
        std::vector<double> tb(time_budget.begin(),
                               time_budget.begin() +
                                   static_cast<std::ptrdiff_t>(
                                       states[a].numIntervals));
        std::vector<double> cb;
        if (capped)
            cb.assign(cap_budget.begin(),
                      cap_budget.begin() +
                          static_cast<std::ptrdiff_t>(
                              states[a].numIntervals));
        const linalg::LpSolution sol = solveCoSchedule(
            solo, vars, demands, tb, cb, idle_power);
        if (sol.status != linalg::LpStatus::Optimal) {
            // Earlier apps starved this one: best effort, standalone.
            g.perTenant[a] = planMinimalEnergy(
                d.performance, d.power, idle_power, d.constraint);
            g.feasible = false;
            continue;
        }

        AppUsage u;
        u.configSeconds.assign(states[a].frontier.size(), 0.0);
        for (std::size_t v = 0; v < vars.size(); ++v) {
            const double secs = std::max(sol.x[v], 0.0);
            if (secs <= 0.0)
                continue;
            u.busySeconds += secs;
            u.activeEnergy += vars[v].watts * secs;
            u.configSeconds[vars[v].frontierIndex] += secs;
            g.intervals[vars[v].interval].busySeconds += secs;
            g.intervals[vars[v].interval].activeEnergyJoules +=
                vars[v].watts * secs;
            time_budget[vars[v].interval] = std::max(
                time_budget[vars[v].interval] - secs, 0.0);
            if (capped)
                cap_budget[vars[v].interval] = std::max(
                    cap_budget[vars[v].interval] -
                        (vars[v].watts - idle_power) * secs,
                    0.0);
            total_busy += secs;
            total_active += vars[v].watts * secs;
        }
        g.perTenant[a] = scheduleFromUsage(
            states[a], u, d.constraint.deadlineSeconds, idle_power);
    }

    if (g.feasible) {
        g.predictedEnergy =
            total_active +
            idle_power * std::max(ends.back() - total_busy, 0.0);
    } else {
        g.predictedEnergy = 0.0;
        for (const Schedule &s : g.perTenant)
            g.predictedEnergy += s.predictedEnergy;
    }
    return g;
}

} // namespace leo::optimizer
