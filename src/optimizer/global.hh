/**
 * @file
 * Global multi-app co-scheduling under a shared power cap.
 *
 * Generalizes the single-app program of Equation (1) to N apps
 * sharing one machine. Time is discretized into intervals whose
 * boundaries are the sorted unique deadlines; the decision variables
 * are the seconds each app spends in each Pareto-frontier
 * configuration within each interval it is allowed to use:
 *
 *     min  sum_{a,f,i} (p_f - p_idle) x[a][f][i]
 *     s.t. sum_{f,i} r_f x[a][f][i]  = W_a            (per app)
 *          sum_{a,f} x[a][f][i]     <= L_i            (per interval)
 *          sum_{a,f} (p_f - p_idle) x[a][f][i]
 *                      <= (cap - p_idle) L_i          (per interval)
 *          x >= 0,
 *
 * where app a may only use intervals ending at or before its
 * deadline. The exclusivity row models one machine (one app runs at
 * a time); the cap row bounds the machine's *average* power over each
 * interval — the natural cap for a time-sharing LP, equivalent to an
 * energy budget of cap * L_i per interval. Total machine energy is
 * the objective plus p_idle * max deadline.
 *
 * The program is solved with the two-phase simplex in
 * linalg/simplex.hh. For a single app with a slack cap it reduces
 * exactly to Equation (1), so that case short-circuits to the hull
 * walk of planMinimalEnergy; the tests force the LP path and assert
 * the two agree.
 */

#ifndef LEO_OPTIMIZER_GLOBAL_HH
#define LEO_OPTIMIZER_GLOBAL_HH

#include <limits>
#include <vector>

#include "linalg/vector.hh"
#include "optimizer/schedule.hh"

namespace leo::optimizer
{

/** No power cap: the cap rows are omitted entirely. */
inline constexpr double kNoPowerCap =
    std::numeric_limits<double>::infinity();

/** One app's estimated tradeoffs and its performance constraint. */
struct TenantDemand
{
    /** Estimated heartbeat rate per configuration. */
    linalg::Vector performance;
    /** Estimated Watts per configuration. */
    linalg::Vector power;
    /** Work and deadline. */
    PerformanceConstraint constraint;
};

/** Knobs of the global planner. */
struct GlobalPlanOptions
{
    /** Machine-wide average-power cap (Watts); kNoPowerCap = none. */
    double powerCapWatts = kNoPowerCap;
    /**
     * Skip the single-app hull-walk fast path and always solve the
     * LP. Exists so tests can assert the two paths agree.
     */
    bool forceLp = false;
};

/** Machine usage within one interval of the global plan. */
struct IntervalUsage
{
    /** Interval end (seconds since the horizon start). */
    double endSeconds = 0.0;
    /** Seconds some app occupies the machine in this interval. */
    double busySeconds = 0.0;
    /** Energy of the occupied time (Joules, at config power). */
    double activeEnergyJoules = 0.0;
};

/** The co-schedule for all apps on the machine. */
struct GlobalSchedule
{
    /**
     * Per-app schedules, index-aligned with the demands. Each sums
     * to its app's deadline (busy time plus an idle tail) and its
     * predictedEnergy covers that window, making it directly
     * comparable with planMinimalEnergy's output.
     */
    std::vector<Schedule> perTenant;
    /**
     * Predicted machine energy over the whole horizon [0, max
     * deadline]: active energy plus idle power for every unoccupied
     * second. When the plan is infeasible this degrades to the sum
     * of the per-app best-effort energies (diagnostic only).
     */
    double predictedEnergy = 0.0;
    /** True iff every app's constraint is met under sharing. */
    bool feasible = true;
    /** Interval structure the LP used (empty on the fast path). */
    std::vector<IntervalUsage> intervals;
};

/**
 * Plan the minimal-energy co-schedule for N apps sharing one
 * machine, optionally under a machine-wide power cap.
 *
 * Degenerate constraints are handled uniformly with the single-app
 * planners: zero work is always feasible (the app just idles), and
 * demands no machine — even an app whose every configuration has
 * zero rate is feasible at zero work. When the shared program is
 * infeasible (deadlines exceed machine capacity, or the cap is too
 * tight), every app falls back to its standalone best-effort
 * planMinimalEnergy plan and the result is marked infeasible.
 *
 * Deterministic: apps, frontier points, and intervals are iterated
 * in fixed order and the simplex uses Bland's rule, so equal inputs
 * produce bit-equal plans regardless of thread or shard count.
 *
 * @param demands    One entry per app (deadlines must be > 0).
 * @param idle_power Watts consumed by the idle machine.
 * @param options    Cap and test knobs.
 */
GlobalSchedule planGlobalSchedule(
    const std::vector<TenantDemand> &demands, double idle_power,
    const GlobalPlanOptions &options = {});

/**
 * The per-app greedy baseline: apps are planned one at a time in
 * index order, each solving its own LP against whatever interval
 * time and cap budget the earlier apps left behind. Any feasible
 * greedy outcome is a feasible point of the global program, so
 * planGlobalSchedule never predicts more energy than this baseline —
 * and beats it outright when greedy's front-loading squeezes a
 * later, tighter app (bench/tab03_global_cap.cc measures the gap).
 */
GlobalSchedule planPerAppGreedy(
    const std::vector<TenantDemand> &demands, double idle_power,
    const GlobalPlanOptions &options = {});

} // namespace leo::optimizer

#endif // LEO_OPTIMIZER_GLOBAL_HH
