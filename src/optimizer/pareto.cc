/**
 * @file
 * Implementation of Pareto frontier and convex hull extraction.
 */

#include "optimizer/pareto.hh"

#include <algorithm>
#include <limits>

#include "linalg/error.hh"

namespace leo::optimizer
{

std::vector<TradeoffPoint>
paretoFrontier(const linalg::Vector &performance,
               const linalg::Vector &power)
{
    require(performance.size() == power.size() && !performance.empty(),
            "paretoFrontier: bad inputs");

    std::vector<TradeoffPoint> pts;
    pts.reserve(performance.size());
    for (std::size_t c = 0; c < performance.size(); ++c)
        pts.push_back({c, performance[c], power[c]});

    // Sort by performance descending, power ascending; sweep keeping
    // the running minimum power. A point is on the frontier iff its
    // power is strictly below every point with performance >= its own.
    std::sort(pts.begin(), pts.end(),
              [](const TradeoffPoint &a, const TradeoffPoint &b) {
                  if (a.performance != b.performance)
                      return a.performance > b.performance;
                  return a.power < b.power;
              });

    std::vector<TradeoffPoint> frontier;
    double best_power = std::numeric_limits<double>::infinity();
    for (const TradeoffPoint &p : pts) {
        if (p.power < best_power) {
            frontier.push_back(p);
            best_power = p.power;
        }
    }
    std::reverse(frontier.begin(), frontier.end());
    return frontier;
}

std::vector<TradeoffPoint>
lowerConvexHull(std::vector<TradeoffPoint> points, double idle_power)
{
    require(!points.empty(), "lowerConvexHull: no points");
    if (idle_power >= 0.0)
        points.push_back({kIdleConfig, 0.0, idle_power});

    std::sort(points.begin(), points.end(),
              [](const TradeoffPoint &a, const TradeoffPoint &b) {
                  if (a.performance != b.performance)
                      return a.performance < b.performance;
                  return a.power < b.power;
              });

    // For equal performance only the cheapest point can be on the
    // lower hull; deduplicate so vertical runs cannot confuse the
    // chain.
    points.erase(
        std::unique(points.begin(), points.end(),
                    [](const TradeoffPoint &a, const TradeoffPoint &b) {
                        return a.performance == b.performance;
                    }),
        points.end());

    // Andrew monotone chain, lower boundary only. cross() > 0 keeps
    // the boundary convex from below.
    auto cross = [](const TradeoffPoint &o, const TradeoffPoint &a,
                    const TradeoffPoint &b) {
        return (a.performance - o.performance) * (b.power - o.power) -
               (a.power - o.power) * (b.performance - o.performance);
    };

    std::vector<TradeoffPoint> hull;
    for (const TradeoffPoint &p : points) {
        while (hull.size() >= 2 &&
               cross(hull[hull.size() - 2], hull.back(), p) <= 0.0) {
            hull.pop_back();
        }
        hull.push_back(p);
    }

    return hull;
}

} // namespace leo::optimizer
