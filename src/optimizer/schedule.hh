/**
 * @file
 * Minimal-energy schedules under a performance constraint.
 *
 * Solves the linear program of Equation (1),
 *
 *     min  sum_c p_c t_c
 *     s.t. sum_c r_c t_c = W,  sum_c t_c <= T,  t >= 0,
 *
 * by walking the lower convex hull of the performance/power tradeoff
 * space (Section 5.3). The slack time T - sum t_c is spent idling at
 * the system's idle power, which the hull walk accounts for by
 * including the idle pseudo-configuration; race-to-idle is the
 * special case that mixes only the all-resources configuration with
 * idle. A simplex cross-check of the hull walk lives in the tests.
 */

#ifndef LEO_OPTIMIZER_SCHEDULE_HH
#define LEO_OPTIMIZER_SCHEDULE_HH

#include <vector>

#include "linalg/vector.hh"
#include "optimizer/pareto.hh"

namespace leo::optimizer
{

/** Time allocated to one configuration. */
struct Allocation
{
    /** Configuration index (kIdleConfig = idle). */
    std::size_t configIndex = kIdleConfig;
    /** Seconds to spend there. */
    double seconds = 0.0;
};

/** A planned execution. */
struct Schedule
{
    /** The time allocations (at most two configs plus idle). */
    std::vector<Allocation> parts;
    /** Energy the planner predicts for the plan (Joules). */
    double predictedEnergy = 0.0;
    /** True iff the planner believed the deadline is achievable. */
    bool feasible = true;
};

/** The constraint: W work units by deadline T. */
struct PerformanceConstraint
{
    /** Work (heartbeats) that must complete. */
    double work = 0.0;
    /** Deadline in seconds. */
    double deadlineSeconds = 0.0;
};

/**
 * Plan the minimal-energy schedule for a constraint, given estimated
 * per-configuration performance and power.
 *
 * @param performance Estimated heartbeat rate per configuration.
 * @param power       Estimated Watts per configuration.
 * @param idle_power  Watts consumed by the idle system.
 * @param constraint  Work and deadline.
 * @return The plan. When even the fastest configuration cannot meet
 *         the deadline, the plan runs it for the whole deadline and
 *         is marked infeasible (best effort).
 */
Schedule planMinimalEnergy(const linalg::Vector &performance,
                           const linalg::Vector &power,
                           double idle_power,
                           const PerformanceConstraint &constraint);

/**
 * The race-to-idle heuristic (Section 6.2): run the configuration
 * with all resources allocated (by convention the final configuration
 * index), then idle.
 */
Schedule planRaceToIdle(const linalg::Vector &performance,
                        const linalg::Vector &power, double idle_power,
                        const PerformanceConstraint &constraint);

/** Outcome of executing a schedule against the true application. */
struct ExecutionResult
{
    /** Energy actually consumed (Joules), over max(T, completion). */
    double energyJoules = 0.0;
    /** When the work actually finished (seconds). */
    double completionSeconds = 0.0;
    /** True iff the work finished by the deadline. */
    bool deadlineMet = false;
};

/**
 * Execute a plan against the *true* performance/power vectors.
 *
 * Faithful to how a mispredicted plan plays out on real hardware: the
 * plan's parts run in order at their true rates; if work remains when
 * the plan ends, the plan's fastest part keeps running past the
 * deadline (energy keeps accruing); if work finishes early, the
 * system idles until the deadline. This is the mechanism behind
 * Figure 9's observation that under-estimated frontiers miss
 * deadlines while over-estimated ones waste energy.
 *
 * @param schedule         The plan (built from estimates).
 * @param true_performance True heartbeat rates.
 * @param true_power       True Watts.
 * @param idle_power       Idle Watts.
 * @param constraint       The constraint being served.
 */
ExecutionResult executeSchedule(const Schedule &schedule,
                                const linalg::Vector &true_performance,
                                const linalg::Vector &true_power,
                                double idle_power,
                                const PerformanceConstraint &constraint);

/**
 * Execute a plan under the runtime's performance guard.
 *
 * The paper's runtime does not run plans open loop: "all approaches
 * use gradient ascent to increase performance until the demand is
 * met" (Section 6.6). This executor emulates that guard: time is
 * divided into control periods; whenever the planned configuration's
 * *true* rate falls short of the rate still required to finish by
 * the deadline, the period instead runs the cheapest configuration
 * on the true Pareto frontier that meets the required rate (the
 * fastest one if none does). Mispredicted plans therefore meet the
 * deadline whenever it is physically possible and pay for their
 * misprediction in energy — which also guarantees that no estimate's
 * measured energy can undercut the true optimum, since every guarded
 * run is a feasible point of the Equation (1) program.
 *
 * @param schedule         The plan (built from estimates).
 * @param true_performance True heartbeat rates.
 * @param true_power       True Watts.
 * @param idle_power       Idle Watts.
 * @param constraint       The constraint being served.
 * @param control_periods  Number of guard evaluations across the
 *                         deadline window.
 */
ExecutionResult executeScheduleGuarded(
    const Schedule &schedule, const linalg::Vector &true_performance,
    const linalg::Vector &true_power, double idle_power,
    const PerformanceConstraint &constraint,
    std::size_t control_periods = 100);

} // namespace leo::optimizer

#endif // LEO_OPTIMIZER_SCHEDULE_HH
