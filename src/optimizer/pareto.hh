/**
 * @file
 * Pareto-optimal performance/power tradeoffs.
 *
 * Section 5.3: "LEO simply first takes the estimates, then finds the
 * set of configurations that represent Pareto-optimal performance and
 * power tradeoffs, and finally walks along the convex hull of this
 * optimal tradeoff space until the performance goal is reached."
 */

#ifndef LEO_OPTIMIZER_PARETO_HH
#define LEO_OPTIMIZER_PARETO_HH

#include <cstddef>
#include <vector>

#include "linalg/vector.hh"

namespace leo::optimizer
{

/** A configuration's position in the perf/power plane. */
struct TradeoffPoint
{
    /** Configuration index, or kIdleConfig for the idle pseudo-point. */
    std::size_t configIndex = 0;
    /** Performance (heartbeats/s). */
    double performance = 0.0;
    /** Power (Watts). */
    double power = 0.0;
};

/** Sentinel config index representing the idle system. */
inline constexpr std::size_t kIdleConfig =
    static_cast<std::size_t>(-1);

/**
 * Extract the Pareto frontier: configurations not dominated by any
 * other (no other configuration has both higher-or-equal performance
 * and lower-or-equal power, with at least one strict).
 *
 * @param performance Per-configuration performance.
 * @param power       Per-configuration power.
 * @return Frontier points sorted by increasing performance.
 */
std::vector<TradeoffPoint> paretoFrontier(
    const linalg::Vector &performance, const linalg::Vector &power);

/**
 * Lower convex hull of a tradeoff set in the (performance, power)
 * plane, optionally rooted at an idle point (0 performance,
 * idle power). Mixing time between adjacent hull vertices yields the
 * minimal-energy way to achieve any intermediate rate, which is why
 * the energy linear program of Equation (1) reduces to a walk along
 * this hull.
 *
 * @param points     Tradeoff points (any order).
 * @param idle_power When >= 0, include the idle pseudo-point.
 * @return Hull vertices sorted by increasing performance; power is
 *         convex and increasing along the result.
 */
std::vector<TradeoffPoint> lowerConvexHull(
    std::vector<TradeoffPoint> points, double idle_power = -1.0);

} // namespace leo::optimizer

#endif // LEO_OPTIMIZER_PARETO_HH
