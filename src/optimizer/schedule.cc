/**
 * @file
 * Implementation of energy scheduling.
 */

#include "optimizer/schedule.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"
#include "obs/obs.hh"

namespace leo::optimizer
{

namespace
{

/** Registry instruments of the scheduler (lazily registered). */
struct PlanObs
{
    obs::Counter plans =
        obs::Registry::global().counter(obs::names::kOptimizerPlansComputed);
    obs::Counter infeasible =
        obs::Registry::global().counter(obs::names::kOptimizerPlansInfeasible);
};

PlanObs &
planObs()
{
    static PlanObs o;
    return o;
}

/** Power of a part under an estimate/truth vector. */
double
partPower(const Allocation &part, const linalg::Vector &power,
          double idle_power)
{
    if (part.configIndex == kIdleConfig)
        return idle_power;
    require(part.configIndex < power.size(),
            "schedule part references unknown configuration");
    return power[part.configIndex];
}

/** Rate of a part under an estimate/truth vector. */
double
partRate(const Allocation &part, const linalg::Vector &performance)
{
    if (part.configIndex == kIdleConfig)
        return 0.0;
    require(part.configIndex < performance.size(),
            "schedule part references unknown configuration");
    return performance[part.configIndex];
}

} // namespace

Schedule
planMinimalEnergy(const linalg::Vector &performance,
                  const linalg::Vector &power, double idle_power,
                  const PerformanceConstraint &constraint)
{
    obs::Span span(obs::names::kOptimizerPlanSpan, "optimizer");
    span.arg("configs", static_cast<double>(performance.size()));
    planObs().plans.add(1);
    require(performance.size() == power.size() && !performance.empty(),
            "planMinimalEnergy: bad estimate vectors");
    require(constraint.deadlineSeconds > 0.0,
            "planMinimalEnergy: deadline must be > 0");
    require(constraint.work >= 0.0,
            "planMinimalEnergy: work must be >= 0");
    require(idle_power >= 0.0,
            "planMinimalEnergy: idle power must be >= 0");

    const double target_rate =
        constraint.work / constraint.deadlineSeconds;

    // Pareto frontier, then lower hull rooted at the idle point.
    const std::vector<TradeoffPoint> frontier =
        paretoFrontier(performance, power);
    const std::vector<TradeoffPoint> hull =
        lowerConvexHull(frontier, idle_power);
    invariant(!hull.empty(), "planMinimalEnergy: empty hull");

    Schedule plan;
    const TradeoffPoint &fastest = hull.back();
    if (target_rate >= fastest.performance) {
        // Cannot (or exactly) meet the demand: run flat out.
        plan.parts.push_back(
            {fastest.configIndex, constraint.deadlineSeconds});
        plan.predictedEnergy =
            fastest.power * constraint.deadlineSeconds;
        plan.feasible = target_rate <= fastest.performance * (1 + 1e-12);
        if (!plan.feasible)
            planObs().infeasible.add(1);
        return plan;
    }

    // Walk the hull for the segment [a, b] bracketing the target
    // rate; time-mixing its endpoints is the LP optimum.
    std::size_t seg = 0;
    while (seg + 1 < hull.size() &&
           hull[seg + 1].performance < target_rate) {
        ++seg;
    }
    const TradeoffPoint &a = hull[seg];
    const TradeoffPoint &b = hull[seg + 1];
    invariant(a.performance <= target_rate &&
                  target_rate <= b.performance,
              "hull walk failed to bracket the target rate");

    const double t = constraint.deadlineSeconds;
    // t_b r_b + t_a r_a = W with t_a + t_b = T.
    const double t_b =
        (constraint.work - a.performance * t) /
        (b.performance - a.performance);
    const double t_a = t - t_b;

    if (t_a > 0.0)
        plan.parts.push_back({a.configIndex, t_a});
    if (t_b > 0.0)
        plan.parts.push_back({b.configIndex, t_b});
    plan.predictedEnergy = std::max(t_a, 0.0) * a.power +
                           std::max(t_b, 0.0) * b.power;
    plan.feasible = true;
    return plan;
}

Schedule
planRaceToIdle(const linalg::Vector &performance,
               const linalg::Vector &power, double idle_power,
               const PerformanceConstraint &constraint)
{
    require(performance.size() == power.size() && !performance.empty(),
            "planRaceToIdle: bad vectors");
    require(constraint.deadlineSeconds > 0.0,
            "planRaceToIdle: deadline must be > 0");

    // All resources allocated: by the flattening convention the
    // all-cores / all-threads / all-controllers / top-speed knob
    // setting is the final configuration.
    const std::size_t race_cfg = performance.size() - 1;
    const double rate = performance[race_cfg];

    Schedule plan;
    const double busy =
        rate > 0.0 ? constraint.work / rate
                   : constraint.deadlineSeconds;
    if (busy >= constraint.deadlineSeconds) {
        plan.parts.push_back(
            {race_cfg, constraint.deadlineSeconds});
        plan.predictedEnergy =
            power[race_cfg] * constraint.deadlineSeconds;
        // An exactly-on-time run (busy == deadline, up to the same
        // epsilon planMinimalEnergy uses for its feasibility check)
        // is feasible — it just has no idle tail to append. Zero
        // rate is only feasible when there is no work, matching
        // planMinimalEnergy's target_rate <= fastest * (1 + eps).
        plan.feasible =
            (rate > 0.0 || constraint.work == 0.0) &&
            busy <= constraint.deadlineSeconds * (1.0 + 1e-12);
        return plan;
    }
    plan.parts.push_back({race_cfg, busy});
    plan.parts.push_back(
        {kIdleConfig, constraint.deadlineSeconds - busy});
    plan.predictedEnergy =
        power[race_cfg] * busy +
        idle_power * (constraint.deadlineSeconds - busy);
    plan.feasible = true;
    return plan;
}

ExecutionResult
executeSchedule(const Schedule &schedule,
                const linalg::Vector &true_performance,
                const linalg::Vector &true_power, double idle_power,
                const PerformanceConstraint &constraint)
{
    require(true_performance.size() == true_power.size(),
            "executeSchedule: bad truth vectors");

    ExecutionResult result;
    double work_left = constraint.work;
    double now = 0.0;
    double energy = 0.0;

    // Track the part with the highest true rate for overtime; the
    // planner would keep running its (believed-)fastest choice.
    std::size_t fallback = kIdleConfig;
    double fallback_rate = 0.0;

    for (const Allocation &part : schedule.parts) {
        require(part.seconds >= 0.0,
                "executeSchedule: negative allocation");
        const double rate = partRate(part, true_performance);
        const double watts =
            partPower(part, true_power, idle_power);
        if (part.configIndex != kIdleConfig && rate > fallback_rate) {
            fallback_rate = rate;
            fallback = part.configIndex;
        }

        double dt = part.seconds;
        if (rate > 0.0 && rate * dt >= work_left) {
            // Work completes inside this part.
            dt = work_left / rate;
            energy += watts * dt;
            now += dt;
            work_left = 0.0;
            break;
        }
        energy += watts * dt;
        now += dt;
        work_left -= rate * dt;
    }

    if (work_left > 1e-12) {
        // The plan ran out before the work did: keep running the
        // fastest part past the deadline.
        if (fallback == kIdleConfig || fallback_rate <= 0.0) {
            // Degenerate plan (pure idle): run the true-fastest
            // configuration — the system cannot sit idle forever.
            for (std::size_t c = 0; c < true_performance.size(); ++c) {
                if (true_performance[c] > fallback_rate) {
                    fallback_rate = true_performance[c];
                    fallback = c;
                }
            }
        }
        require(fallback_rate > 0.0,
                "executeSchedule: no configuration makes progress");
        const double dt = work_left / fallback_rate;
        energy += true_power[fallback] * dt;
        now += dt;
        work_left = 0.0;
    }

    result.completionSeconds = now;
    result.deadlineMet =
        now <= constraint.deadlineSeconds * (1.0 + 1e-9);

    // Idle out the remainder of the deadline window.
    if (now < constraint.deadlineSeconds)
        energy += idle_power * (constraint.deadlineSeconds - now);

    result.energyJoules = energy;
    return result;
}

ExecutionResult
executeScheduleGuarded(const Schedule &schedule,
                       const linalg::Vector &true_performance,
                       const linalg::Vector &true_power,
                       double idle_power,
                       const PerformanceConstraint &constraint,
                       std::size_t control_periods)
{
    require(true_performance.size() == true_power.size() &&
                !true_performance.empty(),
            "executeScheduleGuarded: bad truth vectors");
    require(control_periods >= 1,
            "executeScheduleGuarded: need >= 1 control period");
    require(constraint.deadlineSeconds > 0.0,
            "executeScheduleGuarded: deadline must be > 0");

    // The guard escalates along the true frontier (the runtime keeps
    // measuring, so by the time it needs a faster configuration it
    // knows the real rates).
    const std::vector<TradeoffPoint> frontier =
        paretoFrontier(true_performance, true_power);

    // Expand the plan into a time -> config lookup.
    struct Piece
    {
        double until;
        std::size_t config;
    };
    std::vector<Piece> pieces;
    double plan_end = 0.0;
    for (const Allocation &part : schedule.parts) {
        require(part.seconds >= 0.0,
                "executeScheduleGuarded: negative allocation");
        plan_end += part.seconds;
        pieces.push_back({plan_end, part.configIndex});
    }
    auto planned_at = [&](double t) -> std::size_t {
        for (const Piece &p : pieces)
            if (t < p.until)
                return p.config;
        return pieces.empty() ? kIdleConfig : pieces.back().config;
    };
    // End of the plan piece containing t (so control steps never
    // straddle a planned switch — keeps execution of an exact plan
    // free of quantization error).
    auto piece_end_at = [&](double t) {
        for (const Piece &p : pieces)
            if (t < p.until)
                return p.until;
        return constraint.deadlineSeconds;
    };
    // Work the rest of the plan can still deliver (at true rates)
    // between time t and the deadline. The guard only overrides the
    // plan when this falls short of the remaining work: a correct
    // plan that back-loads its fast phase must be left alone.
    auto plan_capacity = [&](double t) {
        double cap = 0.0;
        double from = t;
        for (const Piece &p : pieces) {
            const double until =
                std::min(p.until, constraint.deadlineSeconds);
            if (until <= from)
                continue;
            if (p.config != kIdleConfig)
                cap += true_performance[p.config] * (until - from);
            from = until;
        }
        return cap;
    };

    const double dt =
        constraint.deadlineSeconds / static_cast<double>(control_periods);

    ExecutionResult result;
    double work_left = constraint.work;
    double now = 0.0;
    double energy = 0.0;

    // Steps shorten at plan-piece boundaries, so allow a few extra
    // iterations beyond the nominal period count.
    const std::size_t max_steps = control_periods + pieces.size() + 8;
    for (std::size_t k = 0;
         k < max_steps && work_left > 1e-12 &&
         now < constraint.deadlineSeconds - 1e-12;
         ++k) {
        // Snap onto a plan boundary when floating accumulation left
        // us within epsilon of one, so the period charges the right
        // piece.
        const double to_boundary = piece_end_at(now) - now;
        if (to_boundary > 0.0 && to_boundary < 1e-9)
            now += to_boundary;

        // The snap may have carried `now` onto (or a hair past) the
        // deadline when a plan piece ends within epsilon of it.
        // Dividing by the remaining time would then produce a
        // negative or unbounded required rate and a negative step
        // that walks time backwards; the window is over, so leave the
        // loop and let the overtime block below finish the work.
        const double time_left = constraint.deadlineSeconds - now;
        if (time_left <= 1e-12)
            break;
        const double required = work_left / time_left;

        std::size_t cfg = planned_at(now);
        double rate = cfg == kIdleConfig ? 0.0 : true_performance[cfg];
        if (plan_capacity(now) + 1e-9 < work_left &&
            rate + 1e-12 < required) {
            // Guard: the plan cannot finish on time on its own;
            // switch to the cheapest true-frontier configuration
            // meeting the required rate (the fastest if none does).
            cfg = frontier.back().configIndex;
            for (const TradeoffPoint &p : frontier) {
                if (p.performance >= required) {
                    cfg = p.configIndex;
                    break;
                }
            }
            rate = true_performance[cfg];
        }
        const double watts =
            cfg == kIdleConfig ? idle_power : true_power[cfg];

        double step = std::min(dt, constraint.deadlineSeconds - now);
        const double boundary = piece_end_at(now) - now;
        if (boundary > 1e-12)
            step = std::min(step, boundary);
        if (rate > 0.0 && rate * step >= work_left)
            step = work_left / rate;
        energy += watts * step;
        now += step;
        work_left -= rate * step;
    }

    if (work_left > 1e-12) {
        // Physically infeasible demand: finish flat out, late. A
        // zero-rate frontier (no configuration makes progress) would
        // divide the remaining work by zero and return a non-finite
        // completion time; fail loudly instead, matching
        // executeSchedule's contract.
        const TradeoffPoint &fastest = frontier.back();
        require(fastest.performance > 0.0,
                "executeScheduleGuarded: no configuration makes "
                "progress");
        const double extra = work_left / fastest.performance;
        energy += true_power[fastest.configIndex] * extra;
        now += extra;
        work_left = 0.0;
    }

    result.completionSeconds = now;
    result.deadlineMet =
        now <= constraint.deadlineSeconds * (1.0 + 1e-9);
    if (now < constraint.deadlineSeconds)
        energy += idle_power * (constraint.deadlineSeconds - now);
    result.energyJoules = energy;
    return result;
}

} // namespace leo::optimizer
