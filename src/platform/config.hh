/**
 * @file
 * System configuration types.
 *
 * The evaluation platform of Section 6.1 is a dual-socket Xeon E5-2690
 * exposing 16 cores, 2 hyperthreads, 2 memory controllers and 16 speed
 * settings (15 DVFS steps plus TurboBoost) for a total of 1024
 * user-accessible configurations.
 */

#ifndef LEO_PLATFORM_CONFIG_HH
#define LEO_PLATFORM_CONFIG_HH

#include <compare>
#include <cstddef>
#include <string>

namespace leo::platform
{

/**
 * One point of the configurable space: the four knobs the runtime can
 * actuate (process affinity, hyperthreading, numactl memory-controller
 * binding, cpufrequtils speed setting).
 */
struct Config
{
    /** Physical cores allocated (1..16). */
    unsigned cores = 1;
    /** Threads per core (1 = no hyperthreading, 2 = hyperthreading). */
    unsigned threadsPerCore = 1;
    /** Memory controllers bound (1..2). */
    unsigned memControllers = 1;
    /** Speed setting (0..14 = DVFS ladder, 15 = TurboBoost). */
    unsigned speedIdx = 0;

    /** Total logical threads the application may run. */
    unsigned threads() const { return cores * threadsPerCore; }

    auto operator<=>(const Config &) const = default;

    /** @return A compact human-readable rendering, e.g. "8c x2 2m s12". */
    std::string describe() const;
};

/**
 * The physical resources a configuration grants, in the units the
 * application models consume. This decouples the *knob* encoding from
 * the *effect* encoding so alternative spaces (e.g. the 32-point
 * core-allocation space of the Section 2 example) can drive the same
 * application models.
 */
struct ResourceAssignment
{
    /** Logical threads available to the application. */
    unsigned threads = 1;
    /** Fraction of threads that are hyperthread siblings, in [0, 1). */
    double htShare = 0.0;
    /** Memory controllers reachable. */
    unsigned memControllers = 1;
    /** Effective core clock in GHz (already accounts for turbo). */
    double freqGHz = 1.2;
    /** True when running in the TurboBoost speed setting. */
    bool turbo = false;
    /** Physical cores powered on. */
    unsigned activeCores = 1;
    /** Sockets with at least one active core (1..2). */
    unsigned activeSockets = 1;
};

} // namespace leo::platform

#endif // LEO_PLATFORM_CONFIG_HH
