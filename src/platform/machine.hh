/**
 * @file
 * Machine model of the evaluation platform.
 *
 * Simulates the paper's dual-socket SuperMICRO X9DRL-iF server with
 * two Intel Xeon E5-2690 processors (Section 6.1): the DVFS ladder
 * (1.2 - 2.9 GHz in 15 steps), TurboBoost, a voltage/frequency curve,
 * per-socket TDP of 135 W, and wall ("WattsUp") idle power. The
 * machine converts a Config into the ResourceAssignment consumed by
 * the application models and supplies the electrical constants for
 * the power model.
 */

#ifndef LEO_PLATFORM_MACHINE_HH
#define LEO_PLATFORM_MACHINE_HH

#include "platform/config.hh"

namespace leo::platform
{

/**
 * Electrical and topological description of the simulated server.
 *
 * Defaults model the paper's testbed; every field is public so tests
 * and alternative platforms can build variants.
 */
struct MachineSpec
{
    /** Physical cores per socket. */
    unsigned coresPerSocket = 8;
    /** Number of sockets. */
    unsigned sockets = 2;
    /** Hardware threads per core. */
    unsigned threadsPerCore = 2;
    /** Memory controllers (one per socket). */
    unsigned memControllers = 2;
    /** Number of DVFS steps below turbo. */
    unsigned dvfsSteps = 15;
    /** Lowest DVFS frequency in GHz. */
    double minFreqGHz = 1.2;
    /** Highest non-turbo DVFS frequency in GHz. */
    double maxFreqGHz = 2.9;
    /** Single-core TurboBoost ceiling in GHz. */
    double turboPeakGHz = 3.8;
    /** All-core TurboBoost frequency in GHz. */
    double turboAllCoreGHz = 3.3;
    /** Thermal design power per socket in Watts. */
    double tdpPerSocketW = 135.0;
    /** Wall power of the idle system (fans, disks, PSU loss, DRAM). */
    double idleSystemPowerW = 85.0;
    /** Uncore power per powered socket in Watts. */
    double uncorePowerPerSocketW = 14.0;
    /** Power per active memory controller in Watts. */
    double memControllerPowerW = 6.0;
    /** Dynamic power coefficient: W per GHz per V^2 per active core. */
    double dynPowerCoeff = 1.55;
    /** Static (leakage) power per active core in Watts. */
    double corePowerStaticW = 1.3;
    /** Voltage at the lowest DVFS point (V). */
    double minVoltage = 0.80;
    /** Voltage at the highest non-turbo DVFS point (V). */
    double maxVoltage = 1.15;
    /** Extra voltage margin applied in turbo (V). */
    double turboVoltageBumpV = 0.12;
    /** Extra power a second hyperthread adds on a busy core (ratio). */
    double htPowerRatio = 0.18;

    /** @return Total physical cores. */
    unsigned totalCores() const { return coresPerSocket * sockets; }
    /** @return Speed settings including turbo. */
    unsigned speedSettings() const { return dvfsSteps + 1; }
};

/**
 * The simulated machine.
 *
 * Stateless except for its spec: translation from knobs to physical
 * resources plus the electrical helper functions used by the workload
 * power models. apply() exists to keep the runtime control loop
 * shaped exactly like the real system (where it would set affinity
 * masks, numactl policy and cpufrequtils governors).
 */
class Machine
{
  public:
    /** Build a machine from a spec (defaults to the paper's testbed). */
    explicit Machine(MachineSpec spec = MachineSpec{});

    /** @return The machine description. */
    const MachineSpec &spec() const { return spec_; }

    /**
     * Frequency of a speed setting in GHz.
     *
     * @param speed_idx    0..dvfsSteps-1 for the ladder, dvfsSteps for
     *                     turbo.
     * @param active_cores Cores powered (turbo frequency degrades as
     *                     more cores are active).
     */
    double frequencyGHz(unsigned speed_idx, unsigned active_cores) const;

    /** Core voltage at a speed setting (linear V/f curve). */
    double voltage(unsigned speed_idx) const;

    /**
     * Translate a knob configuration into physical resources.
     *
     * Cores fill the first socket before waking the second, matching
     * how affinity masks were assigned on the testbed.
     */
    ResourceAssignment assignment(const Config &cfg) const;

    /**
     * Resources for a *logical core count* alone (the Section 2
     * core-allocation-only experiment): threads 1..32 at full speed,
     * hyperthread siblings engaged past 16.
     */
    ResourceAssignment coreOnlyAssignment(unsigned logical_cores) const;

    /**
     * Actuate a configuration. In the simulator this only validates
     * the knobs; on real hardware this is where affinity masks,
     * numactl and cpufrequtils calls would go.
     */
    void apply(const Config &cfg) const;

    /** @return True iff the knobs are inside the machine's ranges. */
    bool valid(const Config &cfg) const;

  private:
    MachineSpec spec_;
};

} // namespace leo::platform

#endif // LEO_PLATFORM_MACHINE_HH
