/**
 * @file
 * Implementation of the machine model.
 */

#include "platform/machine.hh"

#include <algorithm>
#include <sstream>

#include "linalg/error.hh"

namespace leo::platform
{

std::string
Config::describe() const
{
    std::ostringstream os;
    os << cores << "c x" << threadsPerCore << " " << memControllers
       << "m s" << speedIdx;
    return os.str();
}

Machine::Machine(MachineSpec spec) : spec_(spec)
{
    require(spec_.coresPerSocket >= 1 && spec_.sockets >= 1,
            "Machine: need at least one core and socket");
    require(spec_.dvfsSteps >= 2, "Machine: need at least 2 DVFS steps");
    require(spec_.maxFreqGHz > spec_.minFreqGHz,
            "Machine: max frequency must exceed min frequency");
}

double
Machine::frequencyGHz(unsigned speed_idx, unsigned active_cores) const
{
    require(speed_idx < spec_.speedSettings(),
            "Machine: speed index out of range");
    if (speed_idx < spec_.dvfsSteps) {
        const double step =
            (spec_.maxFreqGHz - spec_.minFreqGHz) /
            static_cast<double>(spec_.dvfsSteps - 1);
        return spec_.minFreqGHz + step * static_cast<double>(speed_idx);
    }
    // TurboBoost: frequency bins down as more cores are active.
    const unsigned total = spec_.totalCores();
    const double share =
        total <= 1 ? 0.0
                   : static_cast<double>(
                         std::min(active_cores, total) - 1) /
                         static_cast<double>(total - 1);
    return spec_.turboPeakGHz -
           share * (spec_.turboPeakGHz - spec_.turboAllCoreGHz);
}

double
Machine::voltage(unsigned speed_idx) const
{
    require(speed_idx < spec_.speedSettings(),
            "Machine: speed index out of range");
    if (speed_idx < spec_.dvfsSteps) {
        const double t = static_cast<double>(speed_idx) /
                         static_cast<double>(spec_.dvfsSteps - 1);
        return spec_.minVoltage + t * (spec_.maxVoltage - spec_.minVoltage);
    }
    return spec_.maxVoltage + spec_.turboVoltageBumpV;
}

ResourceAssignment
Machine::assignment(const Config &cfg) const
{
    require(valid(cfg), "Machine: invalid configuration " +
                            cfg.describe());
    ResourceAssignment ra;
    ra.activeCores = cfg.cores;
    ra.threads = cfg.cores * cfg.threadsPerCore;
    ra.htShare = cfg.threadsPerCore == 2 ? 0.5 : 0.0;
    ra.memControllers = cfg.memControllers;
    ra.turbo = cfg.speedIdx == spec_.dvfsSteps;
    ra.freqGHz = frequencyGHz(cfg.speedIdx, cfg.cores);
    ra.activeSockets =
        (cfg.cores + spec_.coresPerSocket - 1) / spec_.coresPerSocket;
    return ra;
}

ResourceAssignment
Machine::coreOnlyAssignment(unsigned logical_cores) const
{
    const unsigned max_logical =
        spec_.totalCores() * spec_.threadsPerCore;
    require(logical_cores >= 1 && logical_cores <= max_logical,
            "Machine: logical core count out of range");
    ResourceAssignment ra;
    ra.threads = logical_cores;
    const unsigned physical = std::min(logical_cores, spec_.totalCores());
    ra.activeCores = physical;
    const unsigned siblings = logical_cores - physical;
    ra.htShare = static_cast<double>(siblings) /
                 static_cast<double>(logical_cores);
    ra.memControllers = spec_.memControllers;
    // The Section 2 example varies cores only; speed stays at the top
    // non-turbo setting.
    ra.turbo = false;
    ra.freqGHz = spec_.maxFreqGHz;
    ra.activeSockets =
        (physical + spec_.coresPerSocket - 1) / spec_.coresPerSocket;
    return ra;
}

void
Machine::apply(const Config &cfg) const
{
    // Simulation: validate only. A hardware backend would program
    // sched_setaffinity, numactl membind and the cpufreq governor.
    require(valid(cfg), "Machine: cannot apply invalid configuration");
}

bool
Machine::valid(const Config &cfg) const
{
    return cfg.cores >= 1 && cfg.cores <= spec_.totalCores() &&
           (cfg.threadsPerCore >= 1 &&
            cfg.threadsPerCore <= spec_.threadsPerCore) &&
           (cfg.memControllers >= 1 &&
            cfg.memControllers <= spec_.memControllers) &&
           cfg.speedIdx < spec_.speedSettings();
}

} // namespace leo::platform
