/**
 * @file
 * Enumerated configuration spaces.
 *
 * LEO's estimators see the system as a flat vector of n configurations
 * (the paper's C with n = |C|). The flattening order matters for the
 * figures: per Section 6.3, "the number of memory controllers is the
 * fastest changing component of configuration, followed by clockspeed,
 * followed by number of cores" (hyperthreading changes slowest), which
 * produces the saw-tooth curves of Figures 7 and 8.
 */

#ifndef LEO_PLATFORM_CONFIG_SPACE_HH
#define LEO_PLATFORM_CONFIG_SPACE_HH

#include <optional>
#include <string>
#include <vector>

#include "linalg/vector.hh"
#include "platform/machine.hh"

namespace leo::platform
{

/**
 * An immutable, ordered list of system configurations together with
 * the physical resources each grants and the raw knob values used as
 * regression predictors by the Online baseline.
 */
class ConfigSpace
{
  public:
    /**
     * The full factorial space of the evaluation platform: 16 cores x
     * 2 hyperthreads x 2 memory controllers x 16 speed settings = 1024
     * configurations, flattened with memory controllers fastest, then
     * speed, then cores, then hyperthreading.
     */
    static ConfigSpace fullFactorial(const Machine &machine);

    /**
     * The Section 2 motivational space: logical core allocation only,
     * 1..32 cores at the top DVFS setting, n = 32.
     */
    static ConfigSpace coreOnly(const Machine &machine);

    /**
     * A reduced factorial space (for fast tests and quick benches):
     * every knob subsampled by the given strides.
     */
    static ConfigSpace reducedFactorial(const Machine &machine,
                                        unsigned core_stride,
                                        unsigned speed_stride);

    /** @return Number of configurations n = |C|. */
    std::size_t size() const { return assignments_.size(); }

    /** @return The physical resources of configuration c. */
    const ResourceAssignment &assignment(std::size_t c) const;

    /**
     * @return The raw knob values of configuration c, the predictors
     *         of the Online baseline's polynomial regression.
     */
    const linalg::Vector &knobs(std::size_t c) const;

    /** @return Number of raw knobs per configuration. */
    std::size_t numKnobs() const { return num_knobs_; }

    /** @return The knob encoding of configuration c (when available). */
    std::optional<Config> config(std::size_t c) const;

    /**
     * Find the index of a knob configuration.
     *
     * @return The index, or nullopt when the space is not knob-based
     *         (core-only spaces) or the config is absent.
     */
    std::optional<std::size_t> indexOf(const Config &cfg) const;

    /** @return A short name for the space ("full1024", "cores32", ...). */
    const std::string &name() const { return name_; }

    /** @return Human-readable label of configuration c. */
    std::string describe(std::size_t c) const;

  private:
    ConfigSpace() = default;

    std::string name_;
    std::size_t num_knobs_ = 0;
    std::vector<ResourceAssignment> assignments_;
    std::vector<linalg::Vector> knobs_;
    std::vector<Config> configs_; // empty for core-only spaces
};

} // namespace leo::platform

#endif // LEO_PLATFORM_CONFIG_SPACE_HH
