/**
 * @file
 * Implementation of configuration space enumeration.
 */

#include "platform/config_space.hh"

#include <algorithm>
#include <sstream>

namespace leo::platform
{

ConfigSpace
ConfigSpace::fullFactorial(const Machine &machine)
{
    return reducedFactorial(machine, 1, 1);
}

ConfigSpace
ConfigSpace::reducedFactorial(const Machine &machine,
                              unsigned core_stride, unsigned speed_stride)
{
    require(core_stride >= 1 && speed_stride >= 1,
            "ConfigSpace: strides must be >= 1");
    const MachineSpec &spec = machine.spec();

    ConfigSpace space;
    space.num_knobs_ = 4;

    // Order: hyperthreading slowest, then cores, then speed, then
    // memory controllers fastest (Section 6.3).
    for (unsigned tpc = 1; tpc <= spec.threadsPerCore; ++tpc) {
        for (unsigned cores = 1; cores <= spec.totalCores();
             cores += core_stride) {
            for (unsigned speed = 0; speed < spec.speedSettings();
                 speed += speed_stride) {
                for (unsigned mc = 1; mc <= spec.memControllers; ++mc) {
                    Config cfg{cores, tpc, mc, speed};
                    space.configs_.push_back(cfg);
                    space.assignments_.push_back(
                        machine.assignment(cfg));
                    space.knobs_.push_back(linalg::Vector{
                        static_cast<double>(cores),
                        static_cast<double>(tpc),
                        static_cast<double>(mc),
                        static_cast<double>(speed)});
                }
            }
        }
    }

    std::ostringstream name;
    if (core_stride == 1 && speed_stride == 1) {
        name << "full" << space.size();
    } else {
        name << "reduced" << space.size();
    }
    space.name_ = name.str();
    return space;
}

ConfigSpace
ConfigSpace::coreOnly(const Machine &machine)
{
    const MachineSpec &spec = machine.spec();
    const unsigned max_logical = spec.totalCores() * spec.threadsPerCore;

    ConfigSpace space;
    space.num_knobs_ = 1;
    for (unsigned k = 1; k <= max_logical; ++k) {
        space.assignments_.push_back(machine.coreOnlyAssignment(k));
        space.knobs_.push_back(
            linalg::Vector{static_cast<double>(k)});
    }
    std::ostringstream name;
    name << "cores" << space.size();
    space.name_ = name.str();
    return space;
}

const ResourceAssignment &
ConfigSpace::assignment(std::size_t c) const
{
    require(c < assignments_.size(), "ConfigSpace index out of range");
    return assignments_[c];
}

const linalg::Vector &
ConfigSpace::knobs(std::size_t c) const
{
    require(c < knobs_.size(), "ConfigSpace index out of range");
    return knobs_[c];
}

std::optional<Config>
ConfigSpace::config(std::size_t c) const
{
    require(c < assignments_.size(), "ConfigSpace index out of range");
    if (configs_.empty())
        return std::nullopt;
    return configs_[c];
}

std::optional<std::size_t>
ConfigSpace::indexOf(const Config &cfg) const
{
    const auto it = std::find(configs_.begin(), configs_.end(), cfg);
    if (it == configs_.end())
        return std::nullopt;
    return static_cast<std::size_t>(it - configs_.begin());
}

std::string
ConfigSpace::describe(std::size_t c) const
{
    require(c < assignments_.size(), "ConfigSpace index out of range");
    if (!configs_.empty())
        return configs_[c].describe();
    std::ostringstream os;
    os << assignments_[c].threads << " logical cores";
    return os.str();
}

} // namespace leo::platform
