/**
 * @file
 * The 25-benchmark suite of Section 6.1.
 *
 * Synthetic stand-ins for PARSEC (blackscholes, bodytrack,
 * fluidanimate, swaptions, x264), MineBench (ScalParC, apr, semphy,
 * svmrfe, kmeans, HOP, PLSA, kmeansnf), Rodinia (cfd, nn, lud,
 * particlefilter, vips, btree, streamcluster, backprop, bfs), plus
 * jacobi, filebound and swish. The per-application parameters are
 * chosen to reproduce the behaviours the paper calls out by name:
 * kmeans peaks at 8 cores, swish at 16, x264 flat past 16, and a wide
 * spread of memory-, compute- and IO-bound responses so that offline
 * averaging is a weak performance predictor (Fig. 5) while power is
 * more machine- than application-determined (Fig. 6).
 */

#ifndef LEO_WORKLOADS_SUITE_HH
#define LEO_WORKLOADS_SUITE_HH

#include <vector>

#include "workloads/app_model.hh"

namespace leo::workloads
{

/** @return All 25 application profiles of the evaluation suite. */
const std::vector<ApplicationProfile> &standardSuite();

/**
 * Look up a profile by benchmark name.
 *
 * @param name Benchmark name, e.g. "kmeans".
 * @return The profile; fatal() when the name is unknown.
 */
const ApplicationProfile &profileByName(const std::string &name);

/** @return The names of all suite members, in suite order. */
std::vector<std::string> suiteNames();

} // namespace leo::workloads

#endif // LEO_WORKLOADS_SUITE_HH
