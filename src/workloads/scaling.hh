/**
 * @file
 * Thread-scaling curves for the synthetic application models.
 *
 * Section 6.3 stresses that real applications exhibit qualitatively
 * different responses to parallelism: "performance for Kmeans peaks at
 * 8 cores, for Swish it peaks at 16 cores, and for x264 it is
 * (essentially) constant after 16 cores". These curve families
 * reproduce exactly those shapes — including the local extrema LEO is
 * designed to be robust to (Section 5.5).
 */

#ifndef LEO_WORKLOADS_SCALING_HH
#define LEO_WORKLOADS_SCALING_HH

#include <memory>
#include <string>

namespace leo::workloads
{

/**
 * Abstract speedup-versus-parallelism curve.
 *
 * speedup() maps an *effective* thread count (possibly fractional,
 * after hyperthread-efficiency discounting) to a speedup relative to
 * one thread. Implementations must return 1 at k = 1 and be positive
 * everywhere.
 */
class ScalingCurve
{
  public:
    virtual ~ScalingCurve() = default;

    /**
     * @param k Effective parallelism (>= 1, possibly fractional).
     * @return Speedup over one thread.
     */
    virtual double speedup(double k) const = 0;

    /** @return A short name for diagnostics ("amdahl", "peaked", ...). */
    virtual std::string name() const = 0;
};

/**
 * Classic Amdahl scaling: S(k) = 1 / ((1 - p) + p / k).
 */
class AmdahlScaling : public ScalingCurve
{
  public:
    /** @param parallel_fraction Parallelizable fraction p in [0, 1]. */
    explicit AmdahlScaling(double parallel_fraction);

    double speedup(double k) const override;
    std::string name() const override { return "amdahl"; }

    /** @return The parallel fraction p. */
    double parallelFraction() const { return p_; }

  private:
    double p_;
};

/**
 * Amdahl scaling that collapses past a peak: beyond k* each extra
 * thread multiplies performance by a decay factor < 1 (lock
 * contention, cache thrash). Kmeans-like: peak at 8, sharp fall.
 */
class PeakedScaling : public ScalingCurve
{
  public:
    /**
     * @param parallel_fraction Amdahl p used up to the peak.
     * @param peak              Thread count k* of maximum speedup.
     * @param decay             Per-extra-thread multiplier in (0, 1).
     */
    PeakedScaling(double parallel_fraction, double peak, double decay);

    double speedup(double k) const override;
    std::string name() const override { return "peaked"; }

    /** @return The peak thread count k*. */
    double peak() const { return peak_; }

  private:
    AmdahlScaling base_;
    double peak_;
    double decay_;
};

/**
 * Amdahl scaling that saturates: speedup is frozen past k*
 * (x264-like: essentially constant after 16 threads).
 */
class SaturatingScaling : public ScalingCurve
{
  public:
    /**
     * @param parallel_fraction Amdahl p used up to saturation.
     * @param saturation        Thread count past which speedup is flat.
     */
    SaturatingScaling(double parallel_fraction, double saturation);

    double speedup(double k) const override;
    std::string name() const override { return "saturating"; }

  private:
    AmdahlScaling base_;
    double saturation_;
};

/**
 * Gustafson-flavoured near-linear scaling with a mild efficiency
 * taper: S(k) = 1 + e (k - 1) with e slightly below 1
 * (swaptions/blackscholes-like embarrassing parallelism).
 */
class LinearScaling : public ScalingCurve
{
  public:
    /** @param efficiency Per-thread marginal efficiency in (0, 1]. */
    explicit LinearScaling(double efficiency);

    double speedup(double k) const override;
    std::string name() const override { return "linear"; }

  private:
    double efficiency_;
};

/**
 * Logarithmic scaling for irregular, synchronization-heavy codes
 * (graph traversal): S(k) = 1 + a ln(k).
 */
class LogScaling : public ScalingCurve
{
  public:
    /** @param gain Multiplier a on ln(k). */
    explicit LogScaling(double gain);

    double speedup(double k) const override;
    std::string name() const override { return "log"; }

  private:
    double gain_;
};

} // namespace leo::workloads

#endif // LEO_WORKLOADS_SCALING_HH
