/**
 * @file
 * Implementation of multi-phase applications.
 */

#include "workloads/phased.hh"

#include "linalg/error.hh"
#include "workloads/suite.hh"

namespace leo::workloads
{

PhasedApplication::PhasedApplication(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    require(!phases_.empty(), "PhasedApplication needs >= 1 phase");
    for (const Phase &p : phases_)
        require(p.frames > 0, "PhasedApplication: empty phase");
}

PhasedApplication
PhasedApplication::fluidanimateTwoPhase(std::size_t frames_per_phase)
{
    ApplicationProfile heavy = profileByName("fluidanimate");
    ApplicationProfile light = heavy;
    // 2/3 the work per frame <=> 3/2 the frame rate everywhere.
    light.baseHeartbeatRate *= 1.5;
    light.textureSeed ^= 0x51u;
    return PhasedApplication(
        {Phase{heavy, frames_per_phase}, Phase{light, frames_per_phase}});
}

std::size_t
PhasedApplication::totalFrames() const
{
    std::size_t total = 0;
    for (const Phase &p : phases_)
        total += p.frames;
    return total;
}

std::size_t
PhasedApplication::phaseIndexAt(std::size_t frame) const
{
    std::size_t offset = 0;
    for (std::size_t i = 0; i < phases_.size(); ++i) {
        offset += phases_[i].frames;
        if (frame < offset)
            return i;
    }
    fatal("PhasedApplication: frame index past the end");
}

const ApplicationProfile &
PhasedApplication::profileAt(std::size_t frame) const
{
    return phases_[phaseIndexAt(frame)].profile;
}

} // namespace leo::workloads
