/**
 * @file
 * Implementation of the thread-scaling curves.
 */

#include "workloads/scaling.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"

namespace leo::workloads
{

AmdahlScaling::AmdahlScaling(double parallel_fraction)
    : p_(parallel_fraction)
{
    require(p_ >= 0.0 && p_ <= 1.0,
            "AmdahlScaling: parallel fraction must be in [0, 1]");
}

double
AmdahlScaling::speedup(double k) const
{
    require(k >= 1.0, "ScalingCurve: k must be >= 1");
    return 1.0 / ((1.0 - p_) + p_ / k);
}

PeakedScaling::PeakedScaling(double parallel_fraction, double peak,
                             double decay)
    : base_(parallel_fraction), peak_(peak), decay_(decay)
{
    require(peak_ >= 1.0, "PeakedScaling: peak must be >= 1");
    require(decay_ > 0.0 && decay_ < 1.0,
            "PeakedScaling: decay must be in (0, 1)");
}

double
PeakedScaling::speedup(double k) const
{
    require(k >= 1.0, "ScalingCurve: k must be >= 1");
    if (k <= peak_)
        return base_.speedup(k);
    return base_.speedup(peak_) * std::pow(decay_, k - peak_);
}

SaturatingScaling::SaturatingScaling(double parallel_fraction,
                                     double saturation)
    : base_(parallel_fraction), saturation_(saturation)
{
    require(saturation_ >= 1.0,
            "SaturatingScaling: saturation must be >= 1");
}

double
SaturatingScaling::speedup(double k) const
{
    require(k >= 1.0, "ScalingCurve: k must be >= 1");
    return base_.speedup(std::min(k, saturation_));
}

LinearScaling::LinearScaling(double efficiency) : efficiency_(efficiency)
{
    require(efficiency_ > 0.0 && efficiency_ <= 1.0,
            "LinearScaling: efficiency must be in (0, 1]");
}

double
LinearScaling::speedup(double k) const
{
    require(k >= 1.0, "ScalingCurve: k must be >= 1");
    return 1.0 + efficiency_ * (k - 1.0);
}

LogScaling::LogScaling(double gain) : gain_(gain)
{
    require(gain_ > 0.0, "LogScaling: gain must be > 0");
}

double
LogScaling::speedup(double k) const
{
    require(k >= 1.0, "ScalingCurve: k must be >= 1");
    return 1.0 + gain_ * std::log(k);
}

} // namespace leo::workloads
