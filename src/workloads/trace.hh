/**
 * @file
 * Trace-driven application models.
 *
 * Replays measured (config -> performance, power) tables instead of
 * evaluating an analytic surface, so real machine profiles — or
 * crafted adversarial ones — become first-class application
 * behaviors usable by every estimator, sampler, bench and the
 * service. A TraceTable is a list of segments; each segment holds
 * sparse rows (configIndex, heartbeatRate, powerWatts) and a
 * work-unit budget, and the model switches segments when its
 * work-unit clock crosses a boundary (the trace analogue of
 * fluidanimate's phases).
 *
 * Text formats (TraceTable::fromString / fromFile):
 *
 * CSV — '#' comments, blank lines and CRLF endings tolerated; an
 * optional "config,performance,power" header; "segment,<workUnits>"
 * directives open a new segment (a first data row before any
 * directive opens an unbounded one):
 *
 *     # two-phase adversarial trace
 *     segment,120
 *     0,1.45,98.0
 *     4,2.90,131.5
 *     segment,0          # 0 = unbounded (terminal segment)
 *     0,0.95,102.0
 *
 * JSON — either a bare array of [config, perf, power] rows (one
 * unbounded segment) or {"segments": [{"workUnits": n, "rows":
 * [[c, perf, power], ...]}, ...]}.
 *
 * Malformed input (missing columns, non-finite or non-positive
 * cells, empty segments, duplicate configs in a segment) throws
 * leo::FatalError. Config indices are validated against the actual
 * ConfigSpace when a TraceApplicationModel is built.
 *
 * Missing configs are filled at construction by a deterministic
 * interpolation policy over config-index space (Linear, Nearest, or
 * Hold), and an optional seeded multiplicative ripple replays the
 * same "measurement noise" for a given (seed, segment, config) on
 * every query — replay noise, not sampling noise.
 */

#ifndef LEO_WORKLOADS_TRACE_HH
#define LEO_WORKLOADS_TRACE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "linalg/vector.hh"
#include "platform/config_space.hh"
#include "workloads/app_model.hh"

namespace leo::workloads
{

/** One contiguous phase of a trace. */
struct TraceSegment
{
    /** Work units this segment lasts; 0 = unbounded (runs forever,
     *  only meaningful for the final segment). */
    std::size_t workUnits = 0;
    /** Config indices with measured rows, strictly increasing. */
    std::vector<std::size_t> indices;
    /** Heartbeat rate per row, positive and finite. */
    std::vector<double> performance;
    /** Wall power per row, positive and finite. */
    std::vector<double> power;
};

/**
 * A parsed trace: one or more segments. Plain data, validated at
 * parse time; see the file comment for the accepted formats.
 */
struct TraceTable
{
    std::vector<TraceSegment> segments;

    /**
     * Parse a trace from text (CSV or JSON; a document whose first
     * non-space character is '{' or '[' is treated as JSON).
     *
     * @throws leo::FatalError on malformed input.
     */
    static TraceTable fromString(const std::string &text);

    /**
     * Parse a trace from a file on disk.
     *
     * @throws leo::FatalError when the file is unreadable or
     *         malformed.
     */
    static TraceTable fromFile(const std::string &path);

    /** @return The largest config index appearing in any segment. */
    std::size_t maxIndex() const;

    /** @return Total work units across bounded segments. */
    std::size_t totalWorkUnits() const;
};

/** How configs absent from a segment are filled in. */
enum class TraceInterpolation
{
    Linear,  //!< Index-linear between neighbors, clamped at ends.
    Nearest, //!< Value of the nearest measured row (ties go low).
    Hold     //!< Last measured row at or below; first row before it.
};

/** Construction knobs for TraceApplicationModel. */
struct TraceModelOptions
{
    /** Fill-in policy for configs missing from a segment. */
    TraceInterpolation interpolation = TraceInterpolation::Linear;
    /** Relative amplitude of the replayed measurement ripple; 0
     *  disables it and replays the table bit-exactly. */
    double noiseRelative = 0.0;
    /** Seed of the ripple; same seed => same replayed noise. */
    std::uint64_t noiseSeed = 0x7ace5eedu;
    /** Wall power of the idle system (the trace measures the active
     *  system, so idle comes from the machine description). */
    double idlePowerWatts = 85.0;
    /** Name reported to estimators / priors / the service. */
    std::string name = "trace";
};

/**
 * An ApplicationBehavior that replays a TraceTable on a ConfigSpace.
 *
 * Dense per-segment performance/power vectors are materialized once
 * at construction (interpolation + noise), so queries are pure table
 * lookups and bitwise reproducible. The model carries a work-unit
 * clock: setWorkUnit() (or advance()) selects the active segment,
 * mirroring how the phased runner advances frames.
 */
class TraceApplicationModel : public ApplicationBehavior
{
  public:
    /**
     * @param table   The parsed trace (validated against @p space).
     * @param space   The configuration space replayed over (borrowed;
     *                must outlive the model).
     * @param options Interpolation / noise / naming knobs.
     * @throws leo::FatalError when a row's config index is outside
     *         the space.
     */
    TraceApplicationModel(TraceTable table,
                          const platform::ConfigSpace &space,
                          TraceModelOptions options = {});

    // ApplicationBehavior
    const std::string &name() const override { return options_.name; }
    double heartbeatRate(
        const platform::ResourceAssignment &ra) const override;
    double
    powerWatts(const platform::ResourceAssignment &ra) const override;
    double chipPowerWatts(
        const platform::ResourceAssignment &ra) const override;
    double idlePowerWatts() const override;

    /** Move the work-unit clock (absolute). */
    void setWorkUnit(std::size_t unit);
    /** Advance the work-unit clock by @p units. */
    void advance(std::size_t units = 1);
    /** @return The current work-unit clock. */
    std::size_t workUnit() const { return unit_; }
    /** @return Index of the segment the clock sits in. */
    std::size_t activeSegment() const { return active_; }
    /** @return Number of segments. */
    std::size_t numSegments() const { return perf_.size(); }
    /** @return The segment active at an arbitrary work unit. */
    std::size_t segmentAt(std::size_t unit) const;

    /** Dense replayed heartbeat table of one segment. */
    const linalg::Vector &segmentPerformance(std::size_t seg) const;
    /** Dense replayed power table of one segment. */
    const linalg::Vector &segmentPower(std::size_t seg) const;

    /** @return The table the model was built from. */
    const TraceTable &table() const { return table_; }

  private:
    std::size_t indexOf(const platform::ResourceAssignment &ra) const;

    TraceTable table_;
    TraceModelOptions options_;
    std::vector<linalg::Vector> perf_;  //!< [segment] dense rates.
    std::vector<linalg::Vector> power_; //!< [segment] dense watts.
    std::vector<std::size_t> starts_;   //!< Segment start work units.
    std::map<std::array<std::uint64_t, 7>, std::size_t> lookup_;
    std::size_t unit_ = 0;
    std::size_t active_ = 0;
};

} // namespace leo::workloads

#endif // LEO_WORKLOADS_TRACE_HH
