/**
 * @file
 * Implementation of the synthetic application models.
 */

#include "workloads/app_model.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"

namespace leo::workloads
{

namespace
{

/** SplitMix64 mixing step, used for the deterministic texture. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::unique_ptr<ScalingCurve>
makeScalingCurve(const ApplicationProfile &profile)
{
    switch (profile.kind) {
      case ScalingKind::Amdahl:
        return std::make_unique<AmdahlScaling>(profile.scaleParam);
      case ScalingKind::Peaked:
        return std::make_unique<PeakedScaling>(
            profile.scaleParam, profile.scalePeak, profile.scaleDecay);
      case ScalingKind::Saturating:
        return std::make_unique<SaturatingScaling>(profile.scaleParam,
                                                   profile.scalePeak);
      case ScalingKind::Linear:
        return std::make_unique<LinearScaling>(profile.scaleParam);
      case ScalingKind::Log:
        return std::make_unique<LogScaling>(profile.scaleParam);
    }
    panic("makeScalingCurve: unknown scaling kind");
}

ApplicationModel::ApplicationModel(ApplicationProfile profile,
                                   const platform::Machine &machine)
    : profile_(std::move(profile)), machine_(machine),
      curve_(makeScalingCurve(profile_))
{
    require(profile_.baseHeartbeatRate > 0.0,
            "ApplicationModel: base heartbeat rate must be > 0");
    require(profile_.htEfficiency >= 0.0 && profile_.htEfficiency <= 1.0,
            "ApplicationModel: htEfficiency must be in [0, 1]");
    require(profile_.freqSensitivity >= 0.0 &&
                profile_.freqSensitivity <= 1.0,
            "ApplicationModel: freqSensitivity must be in [0, 1]");
    require(profile_.ioBoundFraction >= 0.0 &&
                profile_.ioBoundFraction < 1.0,
            "ApplicationModel: ioBoundFraction must be in [0, 1)");
    require(profile_.memIntensity >= 0.0,
            "ApplicationModel: memIntensity must be >= 0");
    require(profile_.stallActivity >= 0.0 &&
                profile_.stallActivity <= 1.0,
            "ApplicationModel: stallActivity must be in [0, 1]");
}

ApplicationModel::PerfBreakdown
ApplicationModel::perf(const platform::ResourceAssignment &ra) const
{
    const platform::MachineSpec &spec = machine_.spec();
    PerfBreakdown out;

    // Hyperthread siblings contribute a discounted share of a core.
    const unsigned siblings = ra.threads - ra.activeCores;
    out.effParallelism = std::max(
        1.0, static_cast<double>(ra.activeCores) +
                 profile_.htEfficiency * static_cast<double>(siblings));

    // Thread scaling of the CPU-bound portion.
    const double s_threads = curve_->speedup(out.effParallelism);

    // Frequency response: only the compute-bound share speeds up with
    // the clock; memory stalls and fixed-latency work do not.
    const double f_rel = ra.freqGHz / spec.maxFreqGHz;
    const double s_freq =
        (1.0 - profile_.freqSensitivity) +
        profile_.freqSensitivity * f_rel;

    out.computeRate = s_threads * s_freq;

    // Roofline memory ceiling: one controller sustains demand
    // 1/memIntensity (in speedup units); two controllers double it.
    double rate = out.computeRate;
    if (profile_.memIntensity > 0.0) {
        const double ceiling =
            static_cast<double>(ra.memControllers) /
            profile_.memIntensity;
        // Smooth minimum of compute rate and bandwidth ceiling.
        const double q = 4.0;
        rate = std::pow(std::pow(rate, -q) + std::pow(ceiling, -q),
                        -1.0 / q);
    }

    // NUMA penalty: threads on a remote socket relative to the bound
    // memory controller pay latency on every miss.
    if (ra.activeSockets > ra.memControllers) {
        const double penalty =
            std::min(0.25, 0.9 * profile_.memIntensity);
        rate *= 1.0 - penalty;
    }

    out.computeFraction =
        out.computeRate > 0.0 ? std::min(1.0, rate / out.computeRate)
                              : 1.0;

    // The IO-bound share neither parallelizes nor scales with clock:
    // overall rate is the harmonic blend of the two shares.
    const double io = profile_.ioBoundFraction;
    out.achievedRate = 1.0 / (io + (1.0 - io) / rate);
    return out;
}

double
ApplicationModel::heartbeatRate(
    const platform::ResourceAssignment &ra) const
{
    const PerfBreakdown pb = perf(ra);
    return profile_.baseHeartbeatRate * pb.achievedRate *
           texture(ra, 0x9e1f);
}

double
ApplicationModel::chipPowerRaw(
    const platform::ResourceAssignment &ra) const
{
    const platform::MachineSpec &spec = machine_.spec();
    const PerfBreakdown pb = perf(ra);

    // Per-core switching activity: busy cycles burn full dynamic
    // power, memory-stalled cycles burn a fraction, IO-blocked time
    // burns almost nothing.
    const double io = profile_.ioBoundFraction;
    const double busy = pb.computeFraction;
    const double act =
        profile_.activityFactor *
        ((1.0 - io) *
             (busy * 1.0 + (1.0 - busy) * profile_.stallActivity) +
         io * 0.08);

    // The assignment carries a frequency, not a speed index, so
    // reconstruct the operating voltage from the linear V/f curve.
    double voltage;
    if (ra.turbo) {
        voltage = spec.maxVoltage + spec.turboVoltageBumpV;
    } else {
        const double t = (ra.freqGHz - spec.minFreqGHz) /
                         (spec.maxFreqGHz - spec.minFreqGHz);
        voltage = spec.minVoltage +
                  std::clamp(t, 0.0, 1.0) *
                      (spec.maxVoltage - spec.minVoltage);
    }

    const unsigned siblings = ra.threads - ra.activeCores;
    const double contexts =
        static_cast<double>(ra.activeCores) +
        spec.htPowerRatio * static_cast<double>(siblings);

    const double dyn = spec.dynPowerCoeff * ra.freqGHz * voltage *
                       voltage * act * contexts;
    const double stat =
        spec.corePowerStaticW * static_cast<double>(ra.activeCores);
    const double uncore = spec.uncorePowerPerSocketW *
                          static_cast<double>(ra.activeSockets);

    // TDP clamp: the package power-caps itself.
    const double cap = spec.tdpPerSocketW *
                       static_cast<double>(ra.activeSockets);
    return std::min(dyn + stat + uncore, cap);
}

double
ApplicationModel::chipPowerWatts(
    const platform::ResourceAssignment &ra) const
{
    return chipPowerRaw(ra) * texture(ra, 0x77a3);
}

double
ApplicationModel::powerWatts(const platform::ResourceAssignment &ra) const
{
    const platform::MachineSpec &spec = machine_.spec();
    const double mc_power =
        spec.memControllerPowerW *
        static_cast<double>(ra.memControllers);
    return spec.idleSystemPowerW + mc_power +
           chipPowerRaw(ra) * texture(ra, 0x77a3);
}

double
ApplicationModel::idlePowerWatts() const
{
    return machine_.spec().idleSystemPowerW;
}

double
ApplicationModel::texture(const platform::ResourceAssignment &ra,
                          std::uint64_t salt) const
{
    if (profile_.textureAmplitude <= 0.0)
        return 1.0;
    // Hash the physically meaningful fields so identical assignments
    // always see the identical ripple.
    std::uint64_t h = profile_.textureSeed ^ (salt * 0x100000001b3ull);
    h = mix64(h ^ ra.threads);
    h = mix64(h ^ (static_cast<std::uint64_t>(ra.activeCores) << 8));
    h = mix64(h ^ (static_cast<std::uint64_t>(ra.memControllers) << 16));
    h = mix64(h ^ static_cast<std::uint64_t>(ra.freqGHz * 1e6));
    h = mix64(h ^ (ra.turbo ? 0xbeefull : 0x1ull));
    const double u =
        static_cast<double>(h >> 11) /
        static_cast<double>(1ull << 53); // [0, 1)
    return 1.0 + profile_.textureAmplitude * (2.0 * u - 1.0);
}

} // namespace leo::workloads
