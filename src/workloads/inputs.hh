/**
 * @file
 * Input-dependent application behaviour.
 *
 * Section 4: "Unfortunately, power and performance are entirely
 * application dependent. For many applications, these values also
 * vary with varying inputs." A new input changes the working-set
 * size, the work per heartbeat and the balance point of the scaling
 * curve — so an application profiled offline on one input is only a
 * *relative* of itself on another. These helpers derive
 * input-perturbed variants of a profile deterministically from an
 * input identifier, used by the tests to show LEO treating a known
 * application with a fresh input like a (well-conditioned) new
 * application.
 */

#ifndef LEO_WORKLOADS_INPUTS_HH
#define LEO_WORKLOADS_INPUTS_HH

#include <cstdint>

#include "workloads/app_model.hh"

namespace leo::workloads
{

/** How strongly an input perturbs each profile dimension. */
struct InputVariation
{
    /** Max relative change of work per heartbeat (rate scale). */
    double rateSpread = 0.5;
    /** Max relative change of memory intensity. */
    double memorySpread = 0.25;
    /** Max relative change of the parallel fraction's headroom
     *  (applied to 1 - scaleParam for Amdahl-family curves). */
    double serialSpread = 0.3;
    /** Max absolute shift of the peak/saturation thread count. */
    double peakShift = 2.0;
};

/**
 * Derive the profile of an application running a different input.
 *
 * Deterministic in (profile.textureSeed, input_id): the same input
 * always produces the same behaviour.
 *
 * @param base      Profile measured on the reference input.
 * @param input_id  Identifier of the new input (0 = reference input,
 *                  returned unchanged).
 * @param variation Perturbation magnitudes.
 */
ApplicationProfile withInput(const ApplicationProfile &base,
                             std::uint64_t input_id,
                             const InputVariation &variation =
                                 InputVariation{});

} // namespace leo::workloads

#endif // LEO_WORKLOADS_INPUTS_HH
