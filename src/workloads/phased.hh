/**
 * @file
 * Multi-phase applications.
 *
 * Section 6.6 runs fluidanimate on an input with two distinct phases:
 * both must render frames at the same real-time rate, but the second
 * phase needs only 2/3 of the resources per frame. A phase change is
 * a step change in the application's performance/power response that
 * the runtime must detect and re-estimate.
 */

#ifndef LEO_WORKLOADS_PHASED_HH
#define LEO_WORKLOADS_PHASED_HH

#include <vector>

#include "workloads/app_model.hh"

namespace leo::workloads
{

/** One phase: a behaviour and how many frames it lasts. */
struct Phase
{
    /** Application behaviour during the phase. */
    ApplicationProfile profile;
    /** Number of frames (heartbeats) in the phase. */
    std::size_t frames = 0;
};

/**
 * An application whose behaviour changes at known frame boundaries.
 * The runtime sees only heartbeats and power; it must infer the
 * change itself.
 */
class PhasedApplication
{
  public:
    /** @param phases The phase sequence (at least one). */
    explicit PhasedApplication(std::vector<Phase> phases);

    /**
     * The Section 6.6 workload: fluidanimate where the second phase
     * requires 2/3 the resources per frame (modelled as a 3/2 higher
     * heartbeat rate at every configuration).
     *
     * @param frames_per_phase Frames in each of the two phases.
     */
    static PhasedApplication fluidanimateTwoPhase(
        std::size_t frames_per_phase = 100);

    /** @return The phase list. */
    const std::vector<Phase> &phases() const { return phases_; }

    /** @return Total frames across all phases. */
    std::size_t totalFrames() const;

    /**
     * @param frame Global frame index (0-based).
     * @return Index of the phase containing that frame.
     */
    std::size_t phaseIndexAt(std::size_t frame) const;

    /** @return The profile active at a global frame index. */
    const ApplicationProfile &profileAt(std::size_t frame) const;

  private:
    std::vector<Phase> phases_;
};

} // namespace leo::workloads

#endif // LEO_WORKLOADS_PHASED_HH
