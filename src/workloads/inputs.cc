/**
 * @file
 * Implementation of input-dependent profile perturbation.
 */

#include "workloads/inputs.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"

namespace leo::workloads
{

namespace
{

/** SplitMix64 step (same mixer as the model texture). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Deterministic uniform in [-1, 1] from (seed, input, salt). */
double
signedUnit(std::uint64_t seed, std::uint64_t input, std::uint64_t salt)
{
    const std::uint64_t h = mix64(mix64(seed ^ salt) ^ input);
    const double u = static_cast<double>(h >> 11) /
                     static_cast<double>(1ull << 53);
    return 2.0 * u - 1.0;
}

} // namespace

ApplicationProfile
withInput(const ApplicationProfile &base, std::uint64_t input_id,
          const InputVariation &variation)
{
    require(variation.rateSpread >= 0.0 &&
                variation.memorySpread >= 0.0 &&
                variation.serialSpread >= 0.0 &&
                variation.peakShift >= 0.0,
            "withInput: spreads must be non-negative");
    if (input_id == 0)
        return base;

    ApplicationProfile p = base;
    const std::uint64_t seed = base.textureSeed;

    // Work per heartbeat: a bigger input clusters more samples per
    // heartbeat, scaling the rate multiplicatively.
    p.baseHeartbeatRate *=
        std::exp(signedUnit(seed, input_id, 0x11) *
                 std::log1p(variation.rateSpread));

    // Working set: memory pressure moves with the input size.
    p.memIntensity *= 1.0 + signedUnit(seed, input_id, 0x22) *
                                variation.memorySpread;
    p.memIntensity = std::max(p.memIntensity, 0.0);

    // Serial fraction headroom (Amdahl-family parameters only).
    if (p.kind == ScalingKind::Amdahl ||
        p.kind == ScalingKind::Peaked ||
        p.kind == ScalingKind::Saturating) {
        const double serial = 1.0 - p.scaleParam;
        const double scaled =
            serial * (1.0 + signedUnit(seed, input_id, 0x33) *
                                variation.serialSpread);
        p.scaleParam = std::clamp(1.0 - scaled, 0.0, 1.0);
    }

    // Peak / saturation point shifts with the balance of work.
    if (p.kind == ScalingKind::Peaked ||
        p.kind == ScalingKind::Saturating) {
        p.scalePeak = std::max(
            1.0, p.scalePeak + signedUnit(seed, input_id, 0x44) *
                                   variation.peakShift);
    }

    // The per-configuration quirks change with the data too.
    p.textureSeed = mix64(seed ^ input_id);
    return p;
}

} // namespace leo::workloads
