#include "workloads/trace.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "linalg/error.hh"
#include "workloads/jsonish.hh"

namespace leo::workloads
{

namespace
{

/** True when the document looks like JSON rather than CSV. */
bool
looksLikeJson(const std::string &text)
{
    for (const char c : text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            continue;
        return c == '{' || c == '[';
    }
    return false;
}

/** Strip an inline '#' comment and surrounding whitespace. */
std::string
stripLine(const std::string &raw)
{
    std::string line = raw;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos)
        line.erase(hash);
    const auto isSpace = [](char c) {
        return c == ' ' || c == '\t' || c == '\r';
    };
    std::size_t b = 0, e = line.size();
    while (b < e && isSpace(line[b]))
        ++b;
    while (e > b && isSpace(line[e - 1]))
        --e;
    return line.substr(b, e - b);
}

/** Split a CSV line on commas, trimming each field. */
std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    std::stringstream ss(line);
    while (std::getline(ss, cur, ','))
        fields.push_back(stripLine(cur));
    if (!line.empty() && line.back() == ',')
        fields.push_back("");
    return fields;
}

/** Parse one strictly-finite double cell. */
double
parseCell(const std::string &tok, std::size_t lineno,
          const char *what)
{
    char *end = nullptr;
    const double x = std::strtod(tok.c_str(), &end);
    require(!tok.empty() && end != nullptr && *end == '\0',
            "trace: line " + std::to_string(lineno) + ": " + what +
                " '" + tok + "' is not a number");
    require(std::isfinite(x), "trace: line " +
                                  std::to_string(lineno) + ": " +
                                  what + " is not finite");
    return x;
}

/** Append one validated (index, perf, power) row to a segment. */
void
pushRow(TraceSegment &seg, std::size_t lineno, double idx,
        double perf, double power)
{
    require(idx >= 0.0 && idx == std::floor(idx),
            "trace: line " + std::to_string(lineno) +
                ": config index must be a non-negative integer");
    require(perf > 0.0, "trace: line " + std::to_string(lineno) +
                            ": performance must be positive");
    require(power > 0.0, "trace: line " + std::to_string(lineno) +
                             ": power must be positive");
    const auto c = static_cast<std::size_t>(idx);
    for (const std::size_t seen : seg.indices)
        require(seen != c,
                "trace: line " + std::to_string(lineno) +
                    ": duplicate config index " + std::to_string(c) +
                    " in segment");
    seg.indices.push_back(c);
    seg.performance.push_back(perf);
    seg.power.push_back(power);
}

/** Sort a segment's rows by config index (parallel arrays). */
void
sortSegment(TraceSegment &seg)
{
    std::vector<std::size_t> order(seg.indices.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    // Insertion sort on index: segments are small and already mostly
    // ordered, and stability is irrelevant (indices are unique).
    for (std::size_t i = 1; i < order.size(); ++i) {
        const std::size_t o = order[i];
        std::size_t j = i;
        while (j > 0 &&
               seg.indices[order[j - 1]] > seg.indices[o]) {
            order[j] = order[j - 1];
            --j;
        }
        order[j] = o;
    }
    TraceSegment sorted;
    sorted.workUnits = seg.workUnits;
    for (const std::size_t o : order) {
        sorted.indices.push_back(seg.indices[o]);
        sorted.performance.push_back(seg.performance[o]);
        sorted.power.push_back(seg.power[o]);
    }
    seg = std::move(sorted);
}

TraceTable
fromCsv(const std::string &text)
{
    TraceTable table;
    TraceSegment cur;
    bool open = false; // A segment is being accumulated.
    std::size_t lineno = 0;
    std::stringstream ss(text);
    std::string raw;

    const auto closeSegment = [&]() {
        require(!cur.indices.empty(),
                "trace: line " + std::to_string(lineno) +
                    ": empty segment");
        sortSegment(cur);
        table.segments.push_back(std::move(cur));
        cur = TraceSegment{};
    };

    while (std::getline(ss, raw)) {
        ++lineno;
        const std::string line = stripLine(raw);
        if (line.empty())
            continue;
        const auto fields = splitFields(line);
        if (fields[0] == "segment") {
            require(fields.size() == 2,
                    "trace: line " + std::to_string(lineno) +
                        ": segment directive needs exactly one "
                        "work-unit count");
            if (open)
                closeSegment();
            const double wu =
                parseCell(fields[1], lineno, "work-unit count");
            require(wu >= 0.0 && wu == std::floor(wu),
                    "trace: line " + std::to_string(lineno) +
                        ": work-unit count must be a non-negative "
                        "integer");
            cur.workUnits = static_cast<std::size_t>(wu);
            open = true;
            continue;
        }
        if (fields[0] == "config" || fields[0] == "index")
            continue; // Optional header row.
        require(fields.size() == 3,
                "trace: line " + std::to_string(lineno) +
                    ": expected 3 columns "
                    "(config,performance,power), got " +
                    std::to_string(fields.size()));
        if (!open)
            open = true; // Implicit unbounded first segment.
        pushRow(cur, lineno, parseCell(fields[0], lineno, "config"),
                parseCell(fields[1], lineno, "performance"),
                parseCell(fields[2], lineno, "power"));
    }
    require(open, "trace: no data rows");
    closeSegment();
    return table;
}

/** One [c, perf, power] JSON row. */
void
pushJsonRow(TraceSegment &seg, const jsonish::Value &row)
{
    require(row.isArray() && row.items().size() == 3,
            "trace: each row must be a [config, performance, power] "
            "triple");
    const double idx = row.items()[0].asNumber();
    const double perf = row.items()[1].asNumber();
    const double power = row.items()[2].asNumber();
    require(std::isfinite(perf) && std::isfinite(power),
            "trace: row cells must be finite");
    pushRow(seg, 0, idx, perf, power);
}

TraceTable
fromJson(const std::string &text)
{
    const jsonish::Value doc = jsonish::parse(text);
    TraceTable table;
    if (doc.isArray()) {
        TraceSegment seg;
        for (const auto &row : doc.items())
            pushJsonRow(seg, row);
        require(!seg.indices.empty(), "trace: empty segment");
        sortSegment(seg);
        table.segments.push_back(std::move(seg));
        return table;
    }
    require(doc.isObject() && doc.has("segments"),
            "trace: JSON root must be a row array or an object with "
            "'segments'");
    const auto &segs = doc.at("segments").items();
    require(!segs.empty(), "trace: 'segments' is empty");
    for (const auto &sv : segs) {
        require(sv.isObject() && sv.has("rows"),
                "trace: each segment needs a 'rows' array");
        TraceSegment seg;
        if (sv.has("workUnits")) {
            const double wu = sv.at("workUnits").asNumber();
            require(wu >= 0.0 && wu == std::floor(wu),
                    "trace: workUnits must be a non-negative "
                    "integer");
            seg.workUnits = static_cast<std::size_t>(wu);
        }
        for (const auto &row : sv.at("rows").items())
            pushJsonRow(seg, row);
        require(!seg.indices.empty(), "trace: empty segment");
        sortSegment(seg);
        table.segments.push_back(std::move(seg));
    }
    return table;
}

/** splitmix64 finalizer: the deterministic noise hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Replayed ripple in [1-amp, 1+amp] for one (seed, seg, c, tag). */
double
ripple(std::uint64_t seed, std::size_t seg, std::size_t c,
       std::uint64_t tag, double amp)
{
    if (amp == 0.0)
        return 1.0;
    std::uint64_t h = mix64(seed ^ mix64(tag));
    h = mix64(h ^ (static_cast<std::uint64_t>(seg) << 32 | c));
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
    return 1.0 + amp * (2.0 * u - 1.0);
}

/** Interpolate one dense value from sorted sparse rows. */
double
fillValue(const std::vector<std::size_t> &idx,
          const std::vector<double> &val, std::size_t c,
          TraceInterpolation policy)
{
    // Find the first measured row at or above c.
    std::size_t hi = 0;
    while (hi < idx.size() && idx[hi] < c)
        ++hi;
    if (hi < idx.size() && idx[hi] == c)
        return val[hi]; // Exact row: replay the measurement.
    if (hi == 0)
        return val.front(); // Before the first row: clamp.
    if (hi == idx.size())
        return val.back(); // Past the last row: clamp.
    const std::size_t lo = hi - 1;
    switch (policy) {
    case TraceInterpolation::Hold:
        return val[lo];
    case TraceInterpolation::Nearest: {
        const std::size_t dlo = c - idx[lo];
        const std::size_t dhi = idx[hi] - c;
        return dlo <= dhi ? val[lo] : val[hi];
    }
    case TraceInterpolation::Linear:
    default: {
        const double t =
            static_cast<double>(c - idx[lo]) /
            static_cast<double>(idx[hi] - idx[lo]);
        return val[lo] + (val[hi] - val[lo]) * t;
    }
    }
}

/** Pack the assignment's knob effects into a lookup key. */
std::array<std::uint64_t, 7>
keyOf(const platform::ResourceAssignment &ra)
{
    return {static_cast<std::uint64_t>(ra.threads),
            std::bit_cast<std::uint64_t>(ra.htShare),
            static_cast<std::uint64_t>(ra.memControllers),
            std::bit_cast<std::uint64_t>(ra.freqGHz),
            static_cast<std::uint64_t>(ra.turbo ? 1 : 0),
            static_cast<std::uint64_t>(ra.activeCores),
            static_cast<std::uint64_t>(ra.activeSockets)};
}

} // namespace

TraceTable
TraceTable::fromString(const std::string &text)
{
    return looksLikeJson(text) ? fromJson(text) : fromCsv(text);
}

TraceTable
TraceTable::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    require(in.good(), "trace: cannot read '" + path + "'");
    std::stringstream buf;
    buf << in.rdbuf();
    return fromString(buf.str());
}

std::size_t
TraceTable::maxIndex() const
{
    std::size_t m = 0;
    for (const auto &seg : segments)
        for (const std::size_t c : seg.indices)
            m = std::max(m, c);
    return m;
}

std::size_t
TraceTable::totalWorkUnits() const
{
    std::size_t total = 0;
    for (const auto &seg : segments)
        total += seg.workUnits;
    return total;
}

TraceApplicationModel::TraceApplicationModel(
    TraceTable table, const platform::ConfigSpace &space,
    TraceModelOptions options)
    : table_(std::move(table)), options_(std::move(options))
{
    require(!table_.segments.empty(), "trace: no segments");
    const std::size_t n = space.size();
    require(table_.maxIndex() < n,
            "trace: config index " +
                std::to_string(table_.maxIndex()) +
                " is outside the space (size " + std::to_string(n) +
                ")");

    std::size_t start = 0;
    for (std::size_t s = 0; s < table_.segments.size(); ++s) {
        const auto &seg = table_.segments[s];
        linalg::Vector perf(n), power(n);
        for (std::size_t c = 0; c < n; ++c) {
            perf[c] = fillValue(seg.indices, seg.performance, c,
                                options_.interpolation) *
                      ripple(options_.noiseSeed, s, c, 0x9e1u,
                             options_.noiseRelative);
            power[c] = fillValue(seg.indices, seg.power, c,
                                 options_.interpolation) *
                       ripple(options_.noiseSeed, s, c, 0x7077u,
                              options_.noiseRelative);
        }
        perf_.push_back(std::move(perf));
        power_.push_back(std::move(power));
        starts_.push_back(start);
        start += seg.workUnits;
    }

    for (std::size_t c = 0; c < n; ++c)
        lookup_.emplace(keyOf(space.assignment(c)), c);
}

double
TraceApplicationModel::heartbeatRate(
    const platform::ResourceAssignment &ra) const
{
    return perf_[active_][indexOf(ra)];
}

double
TraceApplicationModel::powerWatts(
    const platform::ResourceAssignment &ra) const
{
    return power_[active_][indexOf(ra)];
}

double
TraceApplicationModel::chipPowerWatts(
    const platform::ResourceAssignment &ra) const
{
    // Traces measure wall power; attribute everything above the idle
    // baseline to the chips.
    return std::max(powerWatts(ra) - options_.idlePowerWatts, 0.0);
}

double
TraceApplicationModel::idlePowerWatts() const
{
    return options_.idlePowerWatts;
}

void
TraceApplicationModel::setWorkUnit(std::size_t unit)
{
    unit_ = unit;
    active_ = segmentAt(unit);
}

void
TraceApplicationModel::advance(std::size_t units)
{
    setWorkUnit(unit_ + units);
}

std::size_t
TraceApplicationModel::segmentAt(std::size_t unit) const
{
    std::size_t seg = 0;
    for (std::size_t s = 0; s < table_.segments.size(); ++s) {
        const std::size_t wu = table_.segments[s].workUnits;
        seg = s;
        if (wu == 0 || unit < starts_[s] + wu)
            return s;
    }
    return seg; // Past the last bounded segment: stay in it.
}

const linalg::Vector &
TraceApplicationModel::segmentPerformance(std::size_t seg) const
{
    require(seg < perf_.size(), "trace: segment out of range");
    return perf_[seg];
}

const linalg::Vector &
TraceApplicationModel::segmentPower(std::size_t seg) const
{
    require(seg < power_.size(), "trace: segment out of range");
    return power_[seg];
}

std::size_t
TraceApplicationModel::indexOf(
    const platform::ResourceAssignment &ra) const
{
    const auto it = lookup_.find(keyOf(ra));
    require(it != lookup_.end(),
            "trace: resource assignment is not in the model's "
            "configuration space");
    return it->second;
}

} // namespace leo::workloads
