/**
 * @file
 * Synthetic application models.
 *
 * Stand-ins for the paper's 25 instrumented benchmarks (Section 6.1).
 * Each model maps a ResourceAssignment to a noise-free true heartbeat
 * rate (performance) and wall power; the telemetry layer adds
 * measurement noise on top. The models combine:
 *
 *  - a thread-scaling curve (Amdahl / peaked / saturating / linear /
 *    logarithmic) with hyperthread-efficiency discounting,
 *  - an IO-bound serial fraction insensitive to both parallelism and
 *    frequency,
 *  - a frequency-sensitivity blend (memory-stall time does not scale
 *    with clock),
 *  - a roofline-style memory-bandwidth ceiling driven by the number
 *    of memory controllers (the saw-tooth of Figs. 7-8),
 *  - a NUMA penalty when threads span two sockets but only one
 *    memory controller is bound, and
 *  - a deterministic per-configuration "texture" ripple modelling the
 *    reproducible quirks real applications show on real machines.
 *
 * Power follows from utilization: cores stalled on memory burn less
 * than busy cores, IO-blocked threads burn almost nothing, spinning
 * past a scaling peak burns full power while performance falls — the
 * combination that makes racing-to-idle a poor heuristic (Section 2).
 */

#ifndef LEO_WORKLOADS_APP_MODEL_HH
#define LEO_WORKLOADS_APP_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>

#include "platform/machine.hh"
#include "workloads/scaling.hh"

namespace leo::workloads
{

/** Which scaling-curve family an application uses. */
enum class ScalingKind
{
    Amdahl,     //!< Classic Amdahl's-law scaling.
    Peaked,     //!< Scales to a peak, then collapses (kmeans).
    Saturating, //!< Scales to a point, then flat (x264).
    Linear,     //!< Near-linear embarrassing parallelism.
    Log         //!< Logarithmic scaling (irregular codes).
};

/**
 * Plain-value description of one application. Everything the model
 * needs, serializable and cheap to copy.
 */
struct ApplicationProfile
{
    /** Benchmark name, e.g. "kmeans". */
    std::string name;
    /** Originating suite, e.g. "minebench". */
    std::string suite;
    /** Heartbeat rate at 1 thread, top non-turbo speed, all MCs. */
    double baseHeartbeatRate = 10.0;
    /** Scaling-curve family. */
    ScalingKind kind = ScalingKind::Amdahl;
    /** Amdahl parallel fraction / linear efficiency / log gain. */
    double scaleParam = 0.9;
    /** Peak (Peaked) or saturation (Saturating) thread count. */
    double scalePeak = 16.0;
    /** Per-thread decay factor past the peak (Peaked only). */
    double scaleDecay = 0.95;
    /** Contribution of a hyperthread sibling relative to a core. */
    double htEfficiency = 0.3;
    /** Fraction of work that scales with clock frequency, in [0,1]. */
    double freqSensitivity = 0.8;
    /** Bandwidth demand per effective thread at top speed, as a
     *  fraction of one memory controller's bandwidth. */
    double memIntensity = 0.05;
    /** Fraction of time blocked on IO (serial, frequency-blind). */
    double ioBoundFraction = 0.0;
    /** Core switching-activity multiplier (power). */
    double activityFactor = 1.0;
    /** Power burned by a memory-stalled core relative to a busy one.
     *  Spin-wait-heavy codes stay near 1; codes that sleep in the
     *  memory controller queue drop toward 0.25. */
    double stallActivity = 0.45;
    /** Amplitude of the deterministic per-config ripple. */
    double textureAmplitude = 0.02;
    /** Seed of the ripple (per application). */
    std::uint64_t textureSeed = 1;
};

/**
 * Abstract application behavior: anything that maps a resource
 * assignment to a true heartbeat rate and power draw. The analytic
 * ApplicationModel below and the trace-replay backend
 * (workloads/trace.hh) both implement it, so every estimator,
 * sampler, bench and the service can consume either interchangeably.
 */
class ApplicationBehavior
{
  public:
    virtual ~ApplicationBehavior() = default;

    /** @return The application's name. */
    virtual const std::string &name() const = 0;

    /** True heartbeat rate (noise free) in the configuration. */
    virtual double
    heartbeatRate(const platform::ResourceAssignment &ra) const = 0;

    /** True wall power in the configuration, incl. idle baseline. */
    virtual double
    powerWatts(const platform::ResourceAssignment &ra) const = 0;

    /** True chip ("RAPL") power: sockets only, no platform share. */
    virtual double
    chipPowerWatts(const platform::ResourceAssignment &ra) const = 0;

    /** Wall power of the idle system. */
    virtual double idlePowerWatts() const = 0;
};

/**
 * Evaluates an ApplicationProfile on a Machine.
 */
class ApplicationModel : public ApplicationBehavior
{
  public:
    /**
     * @param profile The application description.
     * @param machine The machine it runs on (borrowed; must outlive
     *                the model).
     */
    ApplicationModel(ApplicationProfile profile,
                     const platform::Machine &machine);

    /** @return The profile this model evaluates. */
    const ApplicationProfile &profile() const { return profile_; }

    /** @return The application's name. */
    const std::string &name() const override { return profile_.name; }

    /**
     * True heartbeat rate in the given configuration.
     *
     * @param ra Resources granted.
     * @return Heartbeats per second (noise free).
     */
    double heartbeatRate(
        const platform::ResourceAssignment &ra) const override;

    /**
     * True wall ("WattsUp") power in the given configuration.
     *
     * @param ra Resources granted.
     * @return Watts, including the idle baseline (noise free).
     */
    double
    powerWatts(const platform::ResourceAssignment &ra) const override;

    /**
     * True chip ("RAPL") power: both sockets, excluding platform
     * overheads (fans, disks, DRAM, PSU loss).
     */
    double chipPowerWatts(
        const platform::ResourceAssignment &ra) const override;

    /** Wall power of the idle system. */
    double idlePowerWatts() const override;

  private:
    /** Shared performance computation. */
    struct PerfBreakdown
    {
        double effParallelism;  //!< After HT discounting.
        double computeRate;     //!< Scaling x frequency, pre-ceiling.
        double achievedRate;    //!< After memory ceiling and NUMA.
        double computeFraction; //!< achieved / compute (<= 1).
    };
    PerfBreakdown perf(const platform::ResourceAssignment &ra) const;

    /** Chip power excluding texture; helper for both power queries. */
    double chipPowerRaw(const platform::ResourceAssignment &ra) const;

    /** Deterministic ripple factor in [1-amp, 1+amp]. */
    double texture(const platform::ResourceAssignment &ra,
                   std::uint64_t salt) const;

    ApplicationProfile profile_;
    const platform::Machine &machine_;
    std::unique_ptr<ScalingCurve> curve_;
};

/** Build the scaling curve described by a profile. */
std::unique_ptr<ScalingCurve> makeScalingCurve(
    const ApplicationProfile &profile);

} // namespace leo::workloads

#endif // LEO_WORKLOADS_APP_MODEL_HH
