/**
 * @file
 * Implementation of exhaustive ground-truth evaluation.
 */

#include "workloads/ground_truth.hh"

namespace leo::workloads
{

GroundTruth
computeGroundTruth(const ApplicationBehavior &model,
                   const platform::ConfigSpace &space)
{
    GroundTruth gt;
    gt.performance = linalg::Vector(space.size());
    gt.power = linalg::Vector(space.size());
    for (std::size_t c = 0; c < space.size(); ++c) {
        const platform::ResourceAssignment &ra = space.assignment(c);
        gt.performance[c] = model.heartbeatRate(ra);
        gt.power[c] = model.powerWatts(ra);
    }
    return gt;
}

} // namespace leo::workloads
