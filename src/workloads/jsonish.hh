/**
 * @file
 * Minimal deterministic JSON reader.
 *
 * Just enough JSON for the repository's declarative inputs: trace
 * tables (workloads/trace.hh) and scenario specs (scenario/spec.hh).
 * Parses the full value grammar (objects, arrays, strings with the
 * standard escapes, numbers, true/false/null) into a small DOM with
 * object keys held in a sorted std::map, so iteration order — and
 * therefore everything built from a parsed document — is
 * deterministic and independent of key order in the input.
 *
 * Parse errors throw leo::FatalError with a line/column message.
 * This is an offline input reader, not a wire-format codec: no
 * streaming, no \u surrogate pairs (non-BMP escapes are rejected),
 * and documents are expected to be small.
 */

#ifndef LEO_WORKLOADS_JSONISH_HH
#define LEO_WORKLOADS_JSONISH_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace leo::workloads::jsonish
{

/** Discriminator for Value. */
enum class Kind
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object
};

/**
 * One parsed JSON value. Plain tree; copyable; accessors check the
 * kind and throw leo::FatalError on mismatch so callers get input
 * errors, not undefined behavior.
 */
class Value
{
  public:
    Value() = default;

    /** @return This value's kind. */
    Kind kind() const { return kind_; }

    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @return The boolean payload (kind must be Bool). */
    bool asBool() const;
    /** @return The numeric payload (kind must be Number). */
    double asNumber() const;
    /** @return The string payload (kind must be String). */
    const std::string &asString() const;
    /** @return The elements (kind must be Array). */
    const std::vector<Value> &items() const;
    /** @return The members, key-sorted (kind must be Object). */
    const std::map<std::string, Value> &members() const;

    /** @return Whether an object member with this key exists. */
    bool has(const std::string &key) const;
    /** @return The member (kind must be Object; key must exist). */
    const Value &at(const std::string &key) const;

    /** Factory helpers used by the parser. */
    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double x);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value makeObject(std::map<std::string, Value> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::map<std::string, Value> members_;
};

/**
 * Parse one JSON document.
 *
 * @param text The whole document; trailing whitespace allowed,
 *             trailing garbage rejected.
 * @return The root value.
 * @throws leo::FatalError on any syntax error.
 */
Value parse(const std::string &text);

} // namespace leo::workloads::jsonish

#endif // LEO_WORKLOADS_JSONISH_HH
