/**
 * @file
 * Exhaustive ground truth over a configuration space.
 *
 * Plays the role of the paper's "Exhaustive search" baseline
 * (Section 6.2): the true performance and power of an application in
 * every configuration. On the real testbed this took hours to days
 * per application (Section 6.7); on the simulator it is a loop.
 */

#ifndef LEO_WORKLOADS_GROUND_TRUTH_HH
#define LEO_WORKLOADS_GROUND_TRUTH_HH

#include "linalg/vector.hh"
#include "platform/config_space.hh"
#include "workloads/app_model.hh"

namespace leo::workloads
{

/** True performance/power vectors of one application on one space. */
struct GroundTruth
{
    /** True heartbeat rate per configuration (heartbeats/s). */
    linalg::Vector performance;
    /** True wall power per configuration (Watts). */
    linalg::Vector power;
};

/**
 * Evaluate an application model across every configuration.
 *
 * @param model The application.
 * @param space The configuration space.
 * @return Performance and power vectors of length space.size().
 */
GroundTruth computeGroundTruth(const ApplicationBehavior &model,
                               const platform::ConfigSpace &space);

} // namespace leo::workloads

#endif // LEO_WORKLOADS_GROUND_TRUTH_HH
