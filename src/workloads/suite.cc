/**
 * @file
 * Definition of the 25-benchmark suite.
 */

#include "workloads/suite.hh"

#include "linalg/error.hh"

namespace leo::workloads
{

namespace
{

/** Builder shorthand for the table below. */
ApplicationProfile
app(std::string name, std::string suite, double base_hb,
    ScalingKind kind, double scale_param, double peak, double decay,
    double ht_eff, double freq_sens, double mem_int, double io_frac,
    double activity, double stall_act, double texture_amp,
    std::uint64_t seed)
{
    ApplicationProfile p;
    p.name = std::move(name);
    p.suite = std::move(suite);
    p.baseHeartbeatRate = base_hb;
    p.kind = kind;
    p.scaleParam = scale_param;
    p.scalePeak = peak;
    p.scaleDecay = decay;
    p.htEfficiency = ht_eff;
    p.freqSensitivity = freq_sens;
    p.memIntensity = mem_int;
    p.ioBoundFraction = io_frac;
    p.activityFactor = activity;
    p.stallActivity = stall_act;
    p.textureAmplitude = texture_amp;
    p.textureSeed = seed;
    return p;
}

std::vector<ApplicationProfile>
buildSuite()
{
    using K = ScalingKind;
    std::vector<ApplicationProfile> s;
    s.reserve(25);

    // --- PARSEC ---------------------------------------------------
    s.push_back(app("blackscholes", "parsec", 120.0, K::Linear, 0.93,
                    0, 0, 0.50, 0.95, 0.015, 0.00, 1.15, 0.45, 0.015, 101));
    s.push_back(app("bodytrack", "parsec", 45.0, K::Amdahl, 0.85,
                    0, 0, 0.40, 0.80, 0.040, 0.02, 0.95, 0.40, 0.020, 102));
    s.push_back(app("fluidanimate", "parsec", 25.0, K::Amdahl, 0.95,
                    0, 0, 0.35, 0.75, 0.060, 0.00, 1.05, 0.55, 0.020, 103));
    s.push_back(app("swaptions", "parsec", 80.0, K::Linear, 0.97,
                    0, 0, 0.55, 0.97, 0.010, 0.00, 1.20, 0.45, 0.015, 104));
    s.push_back(app("x264", "parsec", 30.0, K::Saturating, 0.94,
                    16, 0, 0.30, 0.85, 0.050, 0.00, 1.00, 0.50, 0.025, 105));

    // --- MineBench ------------------------------------------------
    s.push_back(app("ScalParC", "minebench", 15.0, K::Amdahl, 0.78,
                    0, 0, 0.30, 0.70, 0.080, 0.00, 0.90, 0.40, 0.020, 201));
    s.push_back(app("apr", "minebench", 22.0, K::Amdahl, 0.80,
                    0, 0, 0.25, 0.65, 0.070, 0.12, 0.85, 0.35, 0.020, 202));
    s.push_back(app("semphy", "minebench", 8.0, K::Amdahl, 0.97,
                    0, 0, 0.35, 0.88, 0.030, 0.00, 1.10, 0.50, 0.020, 203));
    s.push_back(app("svmrfe", "minebench", 18.0, K::Saturating, 0.90,
                    12, 0, 0.20, 0.75, 0.090, 0.00, 0.95, 0.45, 0.020, 204));
    s.push_back(app("kmeans", "minebench", 50.0, K::Peaked, 0.96,
                    8, 0.93, 0.10, 0.80, 0.070, 0.00, 1.05, 0.70, 0.020, 205));
    s.push_back(app("HOP", "minebench", 60.0, K::Amdahl, 0.92,
                    0, 0, 0.30, 0.55, 0.060, 0.08, 0.90, 0.40, 0.020, 206));
    s.push_back(app("PLSA", "minebench", 12.0, K::Peaked, 0.90,
                    12, 0.96, 0.20, 0.80, 0.050, 0.00, 0.95, 0.60, 0.020, 207));
    s.push_back(app("kmeansnf", "minebench", 48.0, K::Peaked, 0.95,
                    10, 0.94, 0.12, 0.78, 0.070, 0.00, 1.00, 0.68, 0.020, 208));

    // --- Rodinia --------------------------------------------------
    s.push_back(app("cfd", "rodinia", 35.0, K::Amdahl, 0.93,
                    0, 0, 0.25, 0.50, 0.180, 0.00, 0.88, 0.50, 0.025, 301));
    s.push_back(app("nn", "rodinia", 90.0, K::Log, 2.2,
                    0, 0, 0.20, 0.45, 0.140, 0.00, 0.62, 0.62, 0.025, 302));
    s.push_back(app("lud", "rodinia", 40.0, K::Amdahl, 0.84,
                    0, 0, 0.30, 0.95, 0.030, 0.00, 1.00, 0.45, 0.020, 303));
    s.push_back(app("particlefilter", "rodinia", 28.0, K::Amdahl, 0.96,
                    0, 0, 0.35, 0.90, 0.040, 0.00, 0.95, 0.50, 0.020, 304));
    s.push_back(app("vips", "rodinia", 33.0, K::Saturating, 0.92,
                    20, 0, 0.30, 0.75, 0.060, 0.10, 0.90, 0.40, 0.020, 305));
    s.push_back(app("btree", "rodinia", 70.0, K::Amdahl, 0.72,
                    0, 0, 0.25, 0.55, 0.120, 0.10, 0.75, 0.30, 0.020, 306));
    s.push_back(app("streamcluster", "rodinia", 20.0, K::Amdahl, 0.94,
                    0, 0, 0.15, 0.45, 0.200, 0.00, 0.68, 0.28, 0.025, 307));
    s.push_back(app("backprop", "rodinia", 55.0, K::Amdahl, 0.82,
                    0, 0, 0.25, 0.60, 0.140, 0.00, 0.85, 0.55, 0.020, 308));
    s.push_back(app("bfs", "rodinia", 65.0, K::Log, 2.0,
                    0, 0, 0.20, 0.40, 0.180, 0.00, 0.58, 0.25, 0.030, 309));

    // --- Other ----------------------------------------------------
    s.push_back(app("jacobi", "other", 42.0, K::Amdahl, 0.95,
                    0, 0, 0.10, 0.35, 0.220, 0.00, 0.75, 0.66, 0.025, 401));
    s.push_back(app("filebound", "other", 100.0, K::Amdahl, 0.70,
                    0, 0, 0.10, 0.25, 0.030, 0.35, 0.50, 0.35, 0.015, 402));
    s.push_back(app("swish", "other", 200.0, K::Peaked, 0.95,
                    16, 0.97, 0.30, 0.65, 0.080, 0.15, 0.80, 0.45, 0.025, 403));

    invariant(s.size() == 25, "standard suite must have 25 entries");
    return s;
}

} // namespace

const std::vector<ApplicationProfile> &
standardSuite()
{
    static const std::vector<ApplicationProfile> suite = buildSuite();
    return suite;
}

const ApplicationProfile &
profileByName(const std::string &name)
{
    for (const ApplicationProfile &p : standardSuite())
        if (p.name == name)
            return p;
    fatal("unknown benchmark name: " + name);
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    names.reserve(standardSuite().size());
    for (const ApplicationProfile &p : standardSuite())
        names.push_back(p.name);
    return names;
}

} // namespace leo::workloads
