#include "workloads/jsonish.hh"

#include <cctype>
#include <cstdlib>
#include <utility>

#include "linalg/error.hh"

namespace leo::workloads::jsonish
{

bool
Value::asBool() const
{
    require(kind_ == Kind::Bool, "jsonish: value is not a boolean");
    return bool_;
}

double
Value::asNumber() const
{
    require(kind_ == Kind::Number, "jsonish: value is not a number");
    return number_;
}

const std::string &
Value::asString() const
{
    require(kind_ == Kind::String, "jsonish: value is not a string");
    return string_;
}

const std::vector<Value> &
Value::items() const
{
    require(kind_ == Kind::Array, "jsonish: value is not an array");
    return items_;
}

const std::map<std::string, Value> &
Value::members() const
{
    require(kind_ == Kind::Object, "jsonish: value is not an object");
    return members_;
}

bool
Value::has(const std::string &key) const
{
    return kind_ == Kind::Object &&
           members_.find(key) != members_.end();
}

const Value &
Value::at(const std::string &key) const
{
    const auto &m = members();
    const auto it = m.find(key);
    require(it != m.end(), "jsonish: missing member '" + key + "'");
    return it->second;
}

Value
Value::makeNull()
{
    return Value{};
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double x)
{
    Value v;
    v.kind_ = Kind::Number;
    v.number_ = x;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

Value
Value::makeObject(std::map<std::string, Value> members)
{
    Value v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

namespace
{

/** Recursive-descent parser over the whole document string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value parseDocument()
    {
        Value v = parseValue();
        skipSpace();
        require(pos_ == text_.size(),
                where() + "trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &msg) const
    {
        fatal(where() + msg);
    }

    std::string where() const
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        return "jsonish: line " + std::to_string(line) + " col " +
               std::to_string(col) + ": ";
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of document");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Value parseValue()
    {
        const char c = peek();
        switch (c) {
        case '{':
            return parseObject();
        case '[':
            return parseArray();
        case '"':
            return Value::makeString(parseString());
        case 't':
            parseKeyword("true");
            return Value::makeBool(true);
        case 'f':
            parseKeyword("false");
            return Value::makeBool(false);
        case 'n':
            parseKeyword("null");
            return Value::makeNull();
        default:
            return parseNumber();
        }
    }

    void parseKeyword(const char *kw)
    {
        for (const char *p = kw; *p != '\0'; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail(std::string("bad keyword (expected '") + kw +
                     "')");
            ++pos_;
        }
    }

    Value parseObject()
    {
        expect('{');
        std::map<std::string, Value> members;
        if (consumeIf('}'))
            return Value::makeObject(std::move(members));
        while (true) {
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = parseString();
            expect(':');
            Value v = parseValue();
            if (!members.emplace(std::move(key), std::move(v))
                     .second)
                fail("duplicate object key");
            if (consumeIf(','))
                continue;
            expect('}');
            return Value::makeObject(std::move(members));
        }
    }

    Value parseArray()
    {
        expect('[');
        std::vector<Value> items;
        if (consumeIf(']'))
            return Value::makeArray(std::move(items));
        while (true) {
            items.push_back(parseValue());
            if (consumeIf(','))
                continue;
            expect(']');
            return Value::makeArray(std::move(items));
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u':
                appendUnicodeEscape(out);
                break;
            default:
                fail("unknown escape");
            }
        }
    }

    void appendUnicodeEscape(std::string &out)
    {
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                fail("truncated \\u escape");
            const char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad hex digit in \\u escape");
        }
        if (cp >= 0xD800 && cp <= 0xDFFF)
            fail("surrogate \\u escapes are not supported");
        // UTF-8 encode the BMP code point.
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    Value parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double x = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0' || end == tok.c_str()) {
            pos_ = start;
            fail("malformed number '" + tok + "'");
        }
        return Value::makeNumber(x);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    Parser p(text);
    return p.parseDocument();
}

} // namespace leo::workloads::jsonish
