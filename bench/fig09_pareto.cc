/**
 * @file
 * Figure 9: estimated vs true Pareto frontiers for kmeans, swish and
 * x264.
 *
 * Prints the lower convex hull (performance as speedup over the
 * slowest configuration, power in Watts) computed from each
 * approach's estimates next to the exhaustive-search truth. Estimated
 * frontiers below the true one mean missed deadlines; above it,
 * wasted energy.
 */

#include "bench_common.hh"

#include "optimizer/pareto.hh"

using namespace leo;

namespace
{

void
printHull(const char *tag, const linalg::Vector &perf,
          const linalg::Vector &power, double ref_rate, double idle)
{
    auto frontier = optimizer::paretoFrontier(perf, power);
    auto hull = optimizer::lowerConvexHull(frontier, idle);
    std::printf("  %s hull (%zu vertices): speedup@Watts:", tag,
                hull.size());
    for (const auto &v : hull) {
        std::printf(" %.2f@%.0f", v.performance / ref_rate, v.power);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 9 — Pareto frontiers, estimated vs true "
                  "(kmeans, swish, x264)",
                  "LEO's hull overlays the true hull; online/offline "
                  "hulls deviate");

    bench::World w = bench::fullWorld();
    stats::Rng rng(bench::seed());
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler policy;

    estimators::LeoEstimator leo;
    estimators::OnlineEstimator online;
    estimators::OfflineEstimator offline;
    const double idle = w.machine.spec().idleSystemPowerW;

    for (const char *name : {"kmeans", "swish", "x264"}) {
        auto prior = w.store.without(name);
        workloads::ApplicationModel app(
            workloads::profileByName(name), w.machine);
        auto truth = workloads::computeGroundTruth(app, w.space);
        auto obs = profiler.sample(app, w.space, policy, 20, rng);
        estimators::EstimationInputs inputs{w.space, prior, obs};

        // Speedups are relative to the slowest configuration.
        const double ref = truth.performance[0];

        std::printf("--- %s ---\n", name);
        printHull("true   ", truth.performance, truth.power, ref,
                  idle);
        auto e = leo.estimate(inputs);
        printHull("leo    ", e.performance.values, e.power.values,
                  ref, idle);
        e = online.estimate(inputs);
        printHull("online ", e.performance.values, e.power.values,
                  ref, idle);
        e = offline.estimate(inputs);
        printHull("offline", e.performance.values, e.power.values,
                  ref, idle);
        std::printf("\n");
    }
    return 0;
}
