/**
 * @file
 * Figure 6: power-estimation accuracy across all 25 benchmarks.
 *
 * Same protocol as Figure 5, scoring Watts instead of heartbeats.
 * Paper means: LEO 0.98, Online 0.85, Offline 0.89.
 */

#include "bench_common.hh"

#include "experiments/accuracy.hh"

using namespace leo;

int
main()
{
    const std::size_t trials = bench::trials();
    bench::banner(
        "Figure 6 — power estimation accuracy (25 benchmarks)",
        "paper means: LEO 0.98 / Online 0.85 / Offline 0.89");
    std::printf("trials per benchmark: %zu (paper: 10; set "
                "LEO_BENCH_TRIALS to change)\n\n",
                trials);

    platform::Machine machine;
    auto space = platform::ConfigSpace::fullFactorial(machine);
    experiments::AccuracyOptions opt;
    opt.trials = trials;
    opt.sampleBudget = 20;
    opt.seed = bench::seed();

    auto rows = experiments::runAccuracyExperiment(
        estimators::Metric::Power, machine, space,
        workloads::standardSuite(), opt);

    experiments::TextTable table(
        {"benchmark", "leo", "online", "offline"});
    for (const auto &r : rows)
        table.addRow({r.application, experiments::fmt(r.leo),
                      experiments::fmt(r.online),
                      experiments::fmt(r.offline)});
    std::printf("%s\n", table.render().c_str());
    std::printf("MEAN  leo %.3f (paper 0.98)   online %.3f (paper "
                "0.85)   offline %.3f (paper 0.89)\n",
                experiments::meanAccuracy(
                    rows, &experiments::AccuracyRow::leo),
                experiments::meanAccuracy(
                    rows, &experiments::AccuracyRow::online),
                experiments::meanAccuracy(
                    rows, &experiments::AccuracyRow::offline));
    return 0;
}
