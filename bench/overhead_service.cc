/**
 * @file
 * Multi-tenant serving-core throughput at 1, 4 and 16 shards.
 *
 * Drives a fleet of tenants — admission through the sampling phase,
 * the batched deferred fit, and steady-state controlling windows —
 * through leo::service::Service and reports tenants/sec (full
 * onboarding-to-controlling throughput) and windows/sec at each
 * shard count, with the pool sized to the shard count. Every run is
 * cross-checked for bitwise-identical per-tenant schedules against
 * the 1-shard baseline: shard count is a throughput knob, never a
 * behavior knob, so any divergence is a bug, not noise.
 *
 * The space is the 256-configuration reduction so Auto resolves the
 * estimator to the low-rank path — the representation the batched
 * refit pillar is built around.
 *
 * Emits google-benchmark-format JSON (consumed by tools/bench_diff.py
 * in CI) to BENCH_service.json, or to argv[1] when given.
 *
 * Environment knobs (bench_common.hh conventions):
 *   LEO_BENCH_TENANTS   fleet size (default 32)
 *   LEO_BENCH_WINDOWS   windows per tenant (default 12)
 *   LEO_BENCH_REPEATS   timing repeats, best-of (default 3)
 *
 * Note: shard scaling needs physical cores; on a single-core host
 * every row times the same inline path and the scaling column reads
 * ~1x.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "parallel/thread_pool.hh"
#include "service/service.hh"

using namespace leo;

namespace
{

struct DriveResult
{
    double ms = 0.0;
    std::size_t windows = 0;
    std::vector<std::vector<std::size_t>> schedules;
};

DriveResult
driveFleet(const bench::World &world,
           const estimators::LeoEstimator &estimator,
           const std::shared_ptr<const telemetry::ProfileStore> &prior,
           const workloads::ApplicationModel &app, std::size_t shards,
           std::size_t tenants, std::size_t windows)
{
    // Pool sized to the shard count: the drain/fit parallelism under
    // measurement is exactly the parallelism a deployment of this
    // shard count would configure.
    parallel::ThreadPool pool(shards - 1);
    service::ServiceOptions opt;
    opt.shards = shards;
    opt.maxTenants = tenants;
    opt.controller.sampleBudget = 6;
    opt.controller.idlePower = world.machine.spec().idleSystemPowerW;

    service::Service svc(world.space, estimator, prior, pool, opt);
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;

    std::vector<std::uint64_t> ids;
    std::vector<stats::Rng> rngs;
    const double peak = 40.0; // Demands spread below x264's peak.
    for (std::size_t t = 0; t < tenants; ++t) {
        service::TenantConfig cfg;
        cfg.appId = "x264";
        cfg.targetRate =
            (0.3 + 0.4 * static_cast<double>(t % 8) / 8.0) * peak;
        cfg.seed = bench::seed() + 1000 + t;
        const auto id = svc.admit(cfg);
        if (!id.has_value()) {
            std::fprintf(stderr, "admission failed\n");
            std::exit(1);
        }
        ids.push_back(*id);
        rngs.emplace_back(bench::seed() + 5000 + t);
    }

    DriveResult res;
    res.schedules.resize(tenants);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t round = 0; round < windows; ++round) {
        for (std::size_t t = 0; t < tenants; ++t) {
            const std::size_t cfg = svc.nextConfig(ids[t]);
            res.schedules[t].push_back(cfg);
            const auto &ra = world.space.assignment(cfg);
            if (!svc.submit(ids[t],
                            {cfg,
                             monitor.measureRate(app, ra, rngs[t]),
                             meter.read(app, ra, rngs[t])})) {
                std::fprintf(stderr, "submit rejected\n");
                std::exit(1);
            }
        }
        const auto report = svc.tick();
        res.windows += report.windowsProcessed;
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("overhead_service — serving-core throughput",
                  "Multi-tenant service acceptance (DESIGN.md, "
                  "Multi-tenant service)");

    platform::Machine machine;
    bench::World world = bench::makeWorld(
        platform::ConfigSpace::reducedFactorial(machine, 2, 2));
    const std::size_t tenants =
        experiments::envSize("LEO_BENCH_TENANTS", 32);
    const std::size_t windows =
        experiments::envSize("LEO_BENCH_WINDOWS", 12);
    const std::size_t repeats =
        experiments::envSize("LEO_BENCH_REPEATS", 3);

    // Auto resolves to low-rank on this space (checked below).
    estimators::LeoOptions lopt;
    lopt.representation = estimators::CovarianceRep::Auto;
    const estimators::LeoEstimator estimator(lopt);
    const auto prior =
        std::make_shared<const telemetry::ProfileStore>(
            world.store.without("x264"));
    const workloads::ApplicationModel app(
        workloads::profileByName("x264"), machine);

    std::printf("%zu tenants, %zu windows each, %zu configurations, "
                "hardware concurrency %zu\n\n",
                tenants, windows, world.space.size(),
                static_cast<std::size_t>(
                    std::thread::hardware_concurrency()));
    std::printf("%-8s %12s %14s %14s %9s %8s\n", "shards", "best ms",
                "tenants/s", "windows/s", "scaling", "bitwise");

    const std::size_t shard_counts[] = {1, 4, 16};
    std::vector<std::vector<std::size_t>> baseline;
    double baseline_ms = 0.0;
    std::string json = "{\n  \"context\": {\"executable\": "
                       "\"overhead_service\"},\n  \"benchmarks\": [\n";
    bool first_row = true;
    for (const std::size_t shards : shard_counts) {
        DriveResult best;
        for (std::size_t r = 0; r < repeats; ++r) {
            DriveResult run =
                driveFleet(world, estimator, prior, app, shards,
                           tenants, windows);
            if (r == 0 || run.ms < best.ms)
                best = std::move(run);
        }
        if (shards == 1) {
            baseline = best.schedules;
            baseline_ms = best.ms;
        }
        const bool bitwise = best.schedules == baseline;
        const double tenants_per_s =
            1e3 * static_cast<double>(tenants) / best.ms;
        const double windows_per_s =
            1e3 * static_cast<double>(best.windows) / best.ms;
        std::printf("%-8zu %12.1f %14.0f %14.0f %8.2fx %8s\n",
                    shards, best.ms, tenants_per_s, windows_per_s,
                    baseline_ms / best.ms, bitwise ? "yes" : "NO");

        char row[512];
        std::snprintf(
            row, sizeof(row),
            "%s    {\"name\": \"BM_ServiceDrive/shards:%zu\", "
            "\"run_type\": \"iteration\", \"iterations\": 1, "
            "\"real_time\": %.3f, \"cpu_time\": %.3f, "
            "\"time_unit\": \"ms\", \"tenants_per_second\": %.1f, "
            "\"windows_per_second\": %.1f}",
            first_row ? "" : ",\n", shards, best.ms, best.ms,
            tenants_per_s, windows_per_s);
        json += row;
        first_row = false;
        if (!bitwise) {
            std::fprintf(stderr,
                         "schedule diverged at %zu shards\n", shards);
            return 1;
        }
    }
    json += "\n  ]\n}\n";

    const std::string out =
        argc > 1 ? argv[1] : "BENCH_service.json";
    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("\nwrote %s\n", out.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    std::printf("Note: shard scaling needs physical cores; on a "
                "single-core host all rows time the same inline "
                "path.\n");
    return 0;
}
