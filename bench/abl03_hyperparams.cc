/**
 * @file
 * Ablation: the normal-inverse-Wishart hyper-parameters.
 *
 * The paper fixes mu_0 = 0, pi = 1, Psi = I, nu = 1 (Section 5.2).
 * In normalized shape space this repository defaults to a scaled
 * Psi = psi I (DESIGN.md section 4); this bench sweeps psi and pi to
 * show the estimator is insensitive over a broad range — i.e. the
 * reproduction does not hinge on hyper-parameter tuning.
 */

#include "bench_common.hh"

#include "stats/metrics.hh"

using namespace leo;

namespace
{

double
meanAccuracy(const bench::World &w, const estimators::LeoOptions &opt)
{
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler policy;
    estimators::LeoEstimator leo(opt);

    double acc = 0.0;
    std::size_t count = 0;
    stats::Rng rng(bench::seed());
    for (const auto &profile : workloads::standardSuite()) {
        auto prior = estimators::priorVectors(
            w.store.without(profile.name),
            estimators::Metric::Performance);
        workloads::ApplicationModel app(profile, w.machine);
        auto gt = workloads::computeGroundTruth(app, w.space);
        auto obs = profiler.sample(app, w.space, policy, 8, rng);
        acc += stats::accuracy(
            leo.estimateMetric(w.space, prior, obs.indices,
                               obs.performance)
                .values,
            gt.performance);
        ++count;
    }
    return acc / static_cast<double>(count);
}

} // namespace

int
main()
{
    bench::banner("Ablation 3 — NIW hyper-parameter sensitivity",
                  "accuracy is flat across decades of psi and pi");

    bench::World w = bench::coreOnlyWorld();

    experiments::TextTable psi_t({"psi", "mean-perf-accuracy"});
    for (double psi : {0.002, 0.01, 0.02, 0.1, 0.5}) {
        estimators::LeoOptions opt;
        opt.hyperPsiScale = psi;
        psi_t.addRow({experiments::fmt(psi, 3),
                      experiments::fmt(meanAccuracy(w, opt))});
    }
    std::printf("%s\n", psi_t.render().c_str());

    experiments::TextTable pi_t({"pi", "mean-perf-accuracy"});
    for (double pi : {0.0, 0.5, 1.0, 2.0, 5.0}) {
        estimators::LeoOptions opt;
        opt.hyperPi = pi;
        pi_t.addRow({experiments::fmt(pi, 1),
                     experiments::fmt(meanAccuracy(w, opt))});
    }
    std::printf("%s", pi_t.render().c_str());
    return 0;
}
