/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries.
 *
 * Every bench prints the rows/series of one paper table or figure
 * (DESIGN.md section 5). Knobs shared across benches come from the
 * environment so the default run is laptop-fast while
 * `LEO_BENCH_TRIALS=10 LEO_BENCH_FULL=1 ...` reproduces the paper's
 * full protocol:
 *
 *   LEO_BENCH_TRIALS  trials per benchmark for accuracy figures
 *                     (paper: 10; default here: 2)
 *   LEO_BENCH_FULL    1 = always use the full 1024-config space for
 *                     the sweep figures (default: fig12 uses a
 *                     512-config reduction to bound runtime)
 *   LEO_BENCH_SEED    master seed (default 42)
 *   LEO_THREADS       size of the shared worker pool the accuracy
 *                     sweeps fan their fits across (default:
 *                     hardware concurrency; results are identical
 *                     at any value)
 */

#ifndef LEO_BENCH_BENCH_COMMON_HH
#define LEO_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "experiments/report.hh"
#include "platform/config_space.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

namespace leo::bench
{

/** The evaluation world: machine, space and offline database. */
struct World
{
    platform::Machine machine;
    platform::ConfigSpace space;
    telemetry::ProfileStore store;
};

/** Master seed from LEO_BENCH_SEED (default 42). */
inline std::uint64_t
seed()
{
    return experiments::envSize("LEO_BENCH_SEED", 42);
}

/** Trials per benchmark from LEO_BENCH_TRIALS (default 2). */
inline std::size_t
trials(std::size_t fallback = 2)
{
    return experiments::envSize("LEO_BENCH_TRIALS", fallback);
}

/** Build the standard world on a given space. */
inline World
makeWorld(platform::ConfigSpace space)
{
    platform::Machine machine;
    stats::Rng rng(seed());
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
    return World{machine, std::move(space), std::move(store)};
}

/** The full 1024-configuration world (Section 6.1). */
inline World
fullWorld()
{
    platform::Machine machine;
    return makeWorld(platform::ConfigSpace::fullFactorial(machine));
}

/** The 32-point core-allocation world (Section 2). */
inline World
coreOnlyWorld()
{
    platform::Machine machine;
    return makeWorld(platform::ConfigSpace::coreOnly(machine));
}

/**
 * The sweep world: full space unless the bench opted into the
 * 512-config reduction and LEO_BENCH_FULL is unset.
 */
inline World
sweepWorld()
{
    platform::Machine machine;
    if (experiments::envSize("LEO_BENCH_FULL", 0) != 0)
        return fullWorld();
    return makeWorld(
        platform::ConfigSpace::reducedFactorial(machine, 1, 2));
}

/** Print the standard bench header. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("=== %s ===\n", what.c_str());
    std::printf("Paper reference: %s\n\n", paper_ref.c_str());
}

} // namespace leo::bench

#endif // LEO_BENCH_BENCH_COMMON_HH
