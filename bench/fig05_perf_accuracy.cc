/**
 * @file
 * Figure 5: performance-estimation accuracy across all 25 benchmarks.
 *
 * Protocol of Section 6.3: 20 random samples, leave-one-out prior,
 * accuracy per Equation (5), averaged over trials (paper: 10;
 * default here: LEO_BENCH_TRIALS or 2). Paper means: LEO 0.97,
 * Online 0.87, Offline 0.68.
 */

#include "bench_common.hh"

#include "experiments/accuracy.hh"

using namespace leo;

int
main()
{
    const std::size_t trials = bench::trials();
    bench::banner(
        "Figure 5 — performance estimation accuracy (25 benchmarks)",
        "paper means: LEO 0.97 / Online 0.87 / Offline 0.68");
    std::printf("trials per benchmark: %zu (paper: 10; set "
                "LEO_BENCH_TRIALS to change)\n\n",
                trials);

    platform::Machine machine;
    auto space = platform::ConfigSpace::fullFactorial(machine);
    experiments::AccuracyOptions opt;
    opt.trials = trials;
    opt.sampleBudget = 20;
    opt.seed = bench::seed();

    auto rows = experiments::runAccuracyExperiment(
        estimators::Metric::Performance, machine, space,
        workloads::standardSuite(), opt);

    experiments::TextTable table(
        {"benchmark", "leo", "online", "offline"});
    for (const auto &r : rows)
        table.addRow({r.application, experiments::fmt(r.leo),
                      experiments::fmt(r.online),
                      experiments::fmt(r.offline)});
    std::printf("%s\n", table.render().c_str());
    std::printf("MEAN  leo %.3f (paper 0.97)   online %.3f (paper "
                "0.87)   offline %.3f (paper 0.68)\n",
                experiments::meanAccuracy(
                    rows, &experiments::AccuracyRow::leo),
                experiments::meanAccuracy(
                    rows, &experiments::AccuracyRow::online),
                experiments::meanAccuracy(
                    rows, &experiments::AccuracyRow::offline));
    return 0;
}
