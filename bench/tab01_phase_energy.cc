/**
 * @file
 * Table 1: relative energy consumption on the phased workload.
 *
 * Energy of each approach per phase and overall, normalized to the
 * oracle (which receives the true vectors at each phase boundary).
 * Paper values:
 *
 *     Algorithm  Phase#1  Phase#2  Overall
 *     LEO        1.045    1.005    1.028
 *     Offline    1.169    1.275    1.216
 *     Online     1.325    1.248    1.291
 */

#include "bench_common.hh"

#include "runtime/phased_run.hh"

using namespace leo;

int
main()
{
    bench::banner("Table 1 — phase energy relative to optimal",
                  "LEO ~1.03 overall; offline ~1.22; online ~1.29");

    bench::World w = bench::fullWorld();
    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(400);
    auto prior = w.store.without("fluidanimate");

    workloads::ApplicationModel heavy(app.phases()[0].profile,
                                      w.machine);
    auto gt = workloads::computeGroundTruth(heavy, w.space);
    runtime::ControllerOptions opt;
    opt.targetRate = 0.6 * gt.performance.max();
    opt.sampleBudget = 20;

    stats::Rng rng_oracle(bench::seed());
    auto oracle = runtime::runPhased(app, w.machine, w.space, nullptr,
                                     w.store, opt, rng_oracle);

    estimators::LeoEstimator leo;
    estimators::OnlineEstimator online;
    estimators::OfflineEstimator offline;
    struct Variant
    {
        const char *name;
        const estimators::Estimator *est;
        double paper_overall;
    };
    const Variant variants[] = {{"LEO", &leo, 1.028},
                                {"Offline", &offline, 1.216},
                                {"Online", &online, 1.291}};

    experiments::TextTable t({"Algorithm", "Phase#1", "Phase#2",
                              "Overall", "paper-overall"});
    for (const Variant &v : variants) {
        // Average over a few seeds: the closed loop is stochastic.
        const std::size_t reps = bench::trials(3);
        double p1 = 0, p2 = 0, total = 0;
        for (std::size_t r = 0; r < reps; ++r) {
            stats::Rng rng(bench::seed() + r);
            auto res = runtime::runPhased(app, w.machine, w.space,
                                          v.est, prior, opt, rng);
            p1 += res.phaseEnergy[0];
            p2 += res.phaseEnergy[1];
            total += res.totalEnergy;
        }
        const double n = static_cast<double>(reps);
        t.addRow({v.name,
                  experiments::fmt(p1 / n / oracle.phaseEnergy[0]),
                  experiments::fmt(p2 / n / oracle.phaseEnergy[1]),
                  experiments::fmt(total / n / oracle.totalEnergy),
                  experiments::fmt(v.paper_overall)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\noracle energy: phase1 %.0f J, phase2 %.0f J, "
                "total %.0f J\n",
                oracle.phaseEnergy[0], oracle.phaseEnergy[1],
                oracle.totalEnergy);
    return 0;
}
