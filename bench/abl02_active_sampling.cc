/**
 * @file
 * Ablation: where to spend the measurement budget.
 *
 * Compares three sampling policies at equal budget: uniform random
 * (the paper's protocol), a uniform grid, and the variance-guided
 * active sampler (this repository's extension — probe where the
 * posterior predictive variance is largest). Reports mean LEO
 * performance-estimation accuracy over the suite.
 */

#include "bench_common.hh"

#include "estimators/active_sampling.hh"
#include "stats/metrics.hh"

using namespace leo;

int
main()
{
    bench::banner("Ablation 2 — sampling policy at equal budget",
                  "extension study: on this substrate the low-rank prior "
                  "variance is nearly uniform, so guided probing "
                  "roughly ties random — reported as measured");

    bench::World w = bench::coreOnlyWorld();
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler random_policy;
    telemetry::UniformGridSampler grid_policy;
    estimators::LeoEstimator leo;
    estimators::VarianceGuidedSampler active;

    experiments::TextTable t(
        {"budget", "random", "grid", "variance-guided"});
    for (std::size_t budget : {4u, 6u, 8u, 12u, 16u}) {
        double acc_rand = 0.0, acc_grid = 0.0, acc_active = 0.0;
        std::size_t count = 0;
        for (const auto &profile : workloads::standardSuite()) {
            auto prior_store = w.store.without(profile.name);
            auto prior = estimators::priorVectors(
                prior_store, estimators::Metric::Performance);
            workloads::ApplicationModel app(profile, w.machine);
            auto gt = workloads::computeGroundTruth(app, w.space);

            stats::Rng rng(bench::seed() + budget);
            auto score = [&](const telemetry::Observations &obs) {
                return stats::accuracy(
                    leo.estimateMetric(w.space, prior, obs.indices,
                                       obs.performance)
                        .values,
                    gt.performance);
            };

            acc_rand += score(profiler.sample(
                app, w.space, random_policy, budget, rng));
            acc_grid += score(profiler.sample(
                app, w.space, grid_policy, budget, rng));

            auto measure = [&](std::size_t idx) {
                telemetry::Sample s;
                s.configIndex = idx;
                const auto &ra = w.space.assignment(idx);
                s.heartbeatRate = monitor.measureRate(app, ra, rng);
                s.powerWatts = meter.read(app, ra, rng);
                return s;
            };
            acc_active +=
                score(active.collect(measure, prior, budget, rng));
            ++count;
        }
        t.addRow({std::to_string(budget),
                  experiments::fmt(acc_rand / count),
                  experiments::fmt(acc_grid / count),
                  experiments::fmt(acc_active / count)});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
