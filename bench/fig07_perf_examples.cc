/**
 * @file
 * Figure 7: LEO performance estimates vs configuration index for
 * three representative applications (kmeans, swish, x264) on the
 * full 1024-configuration space.
 *
 * The saw-tooth arises from the flattening order (memory controllers
 * fastest, then speed, then cores). The paper's claim: LEO's
 * estimates are nearly indistinguishable from the measured series,
 * including the local extrema. The series is printed decimated
 * (every 16th index); accuracies use all 1024 points.
 */

#include "bench_common.hh"

#include "stats/metrics.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 7 — performance estimates vs configuration "
                  "index (kmeans, swish, x264)",
                  "LEO tracks the saw-tooth and the peaks from 20 "
                  "samples (<2% of the space)");

    bench::World w = bench::fullWorld();
    stats::Rng rng(bench::seed());
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler policy;
    estimators::LeoEstimator leo;

    for (const char *name : {"kmeans", "swish", "x264"}) {
        auto prior = w.store.without(name);
        workloads::ApplicationModel app(
            workloads::profileByName(name), w.machine);
        auto truth = workloads::computeGroundTruth(app, w.space);
        auto obs = profiler.sample(app, w.space, policy, 20, rng);

        auto est = leo.estimateMetric(
            w.space,
            estimators::priorVectors(prior,
                                     estimators::Metric::Performance),
            obs.indices, obs.performance);

        std::printf("--- %s (accuracy %.3f, peak: true idx %zu / "
                    "est idx %zu) ---\n",
                    name, stats::accuracy(est.values, truth.performance),
                    truth.performance.argmax(),
                    est.values.argmax());
        std::printf("index  true-hb/s  leo-hb/s\n");
        for (std::size_t c = 0; c < w.space.size(); c += 16) {
            std::printf("%5zu  %9.2f  %8.2f\n", c,
                        truth.performance[c], est.values[c]);
        }
        std::printf("\n");
    }
    return 0;
}
