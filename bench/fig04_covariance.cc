/**
 * @file
 * Figure 4: the learned configuration covariance.
 *
 * The paper illustrates how Sigma captures correlation between
 * configurations — nearby core counts covary strongly, so observing
 * one informs the other. This bench fits the hierarchical model on
 * the 32-point core space and prints the correlation matrix (coarse
 * 8x8 blocks plus selected exact entries).
 */

#include <cmath>

#include "bench_common.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 4 — learned covariance across configurations",
                  "correlation decays with core-count distance; "
                  "adjacent configurations share information");

    bench::World w = bench::coreOnlyWorld();
    auto prior = w.store.without("kmeans");
    workloads::ApplicationModel kmeans(
        workloads::profileByName("kmeans"), w.machine);

    stats::Rng rng(bench::seed());
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::UniformGridSampler grid;
    auto obs = profiler.sample(kmeans, w.space, grid, 6, rng);

    estimators::LeoEstimator leo;
    auto fit = leo.fitMetric(
        estimators::priorVectors(prior,
                                 estimators::Metric::Performance),
        obs.indices, obs.performance);

    const linalg::Matrix &s = fit.sigma;
    auto corr = [&](std::size_t i, std::size_t j) {
        return s(i, j) / std::sqrt(s(i, i) * s(j, j));
    };

    // Coarse 8x8 view: average correlation within 4-core blocks.
    std::printf("block-averaged correlation (4-core blocks)\n");
    std::printf("        ");
    for (int b = 0; b < 8; ++b)
        std::printf("  %2d-%2d", 4 * b + 1, 4 * b + 4);
    std::printf("\n");
    for (int bi = 0; bi < 8; ++bi) {
        std::printf("  %2d-%2d ", 4 * bi + 1, 4 * bi + 4);
        for (int bj = 0; bj < 8; ++bj) {
            double acc = 0.0;
            for (int i = 0; i < 4; ++i)
                for (int j = 0; j < 4; ++j)
                    acc += corr(4 * bi + i, 4 * bj + j);
            std::printf("  %5.2f", acc / 16.0);
        }
        std::printf("\n");
    }

    std::printf("\nselected entries\n");
    std::printf("  corr(cores 8, cores 9)  = %.3f  (adjacent)\n",
                corr(7, 8));
    std::printf("  corr(cores 8, cores 16) = %.3f\n", corr(7, 15));
    std::printf("  corr(cores 2, cores 32) = %.3f  (distant)\n",
                corr(1, 31));
    std::printf("\nEM: %zu iterations, sigma^2 = %.5f, converged=%d\n",
                fit.iterations, fit.sigma2, fit.converged ? 1 : 0);
    return 0;
}
