/**
 * @file
 * Figure 11: average energy normalized to optimal, per benchmark.
 *
 * For every one of the 25 applications, sweep utilization, execute
 * each approach's plan against the truth, average over the sweep and
 * normalize to optimal. Paper means: LEO +6%, Online +24%,
 * Offline +29%, race-to-idle +90%.
 */

#include "bench_common.hh"

#include "experiments/energy.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 11 — mean energy normalized to optimal, "
                  "all 25 benchmarks",
                  "paper means: LEO 1.06 / Online 1.24 / Offline 1.29 "
                  "/ race-to-idle 1.90");

    bench::World w = bench::fullWorld();
    experiments::EnergyOptions opt;
    opt.utilizationLevels =
        experiments::envSize("LEO_BENCH_UTIL_LEVELS", 20);
    opt.sampleBudget = 20;
    opt.seed = bench::seed();

    experiments::TextTable t(
        {"benchmark", "leo", "online", "offline", "race"});
    double m_leo = 0, m_on = 0, m_off = 0, m_race = 0;
    const auto &suite = workloads::standardSuite();
    for (const auto &profile : suite) {
        auto curve = experiments::runEnergyExperiment(
            profile, w.machine, w.space,
            w.store.without(profile.name), opt);
        const double leo =
            curve.meanRelative(&experiments::EnergyPoint::leo);
        const double on =
            curve.meanRelative(&experiments::EnergyPoint::online);
        const double off =
            curve.meanRelative(&experiments::EnergyPoint::offline);
        const double race =
            curve.meanRelative(&experiments::EnergyPoint::raceToIdle);
        t.addRow({profile.name, experiments::fmt(leo),
                  experiments::fmt(on), experiments::fmt(off),
                  experiments::fmt(race)});
        m_leo += leo;
        m_on += on;
        m_off += off;
        m_race += race;
    }
    const double n = static_cast<double>(suite.size());
    std::printf("%s\n", t.render().c_str());
    std::printf("MEAN  leo %.3f (paper 1.06)   online %.3f (paper "
                "1.24)   offline %.3f (paper 1.29)   race %.3f "
                "(paper 1.90)\n",
                m_leo / n, m_on / n, m_off / n, m_race / n);
    return 0;
}
