/**
 * @file
 * Ablation: EM initialization strategy.
 *
 * Section 5.5: "Empirically, however, we observe that the
 * initialization of mu with the estimates from the online or offline
 * approaches improves LEO's accuracy." In this implementation a
 * single M-step already recovers the offline mean (mu is re-estimated
 * from the posterior shapes), so the *prediction* is insensitive to
 * the init; what the init buys is convergence speed. This bench
 * reports both: iterations until the prediction stabilizes, and
 * accuracy at a hard 1- and 2-iteration cap.
 */

#include "bench_common.hh"

#include "stats/metrics.hh"

using namespace leo;

namespace
{

struct InitResult
{
    double meanIterations = 0.0;
    double accuracyCap1 = 0.0;
    double accuracyCap2 = 0.0;
    double accuracyConverged = 0.0;
};

InitResult
evaluate(const bench::World &w, estimators::EmInit init,
         double init_sigma2)
{
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler policy;
    stats::Rng rng(bench::seed());

    InitResult r;
    std::size_t count = 0;
    for (const auto &profile : workloads::standardSuite()) {
        auto prior = estimators::priorVectors(
            w.store.without(profile.name),
            estimators::Metric::Performance);
        workloads::ApplicationModel app(profile, w.machine);
        auto gt = workloads::computeGroundTruth(app, w.space);
        auto obs = profiler.sample(app, w.space, policy, 8, rng);

        estimators::LeoOptions opt;
        opt.init = init;
        opt.initSigma2 = init_sigma2;
        opt.maxIterations = 16;
        auto fit = estimators::LeoEstimator(opt).fitMetric(
            prior, obs.indices, obs.performance);
        r.meanIterations += static_cast<double>(fit.iterations);
        r.accuracyConverged +=
            stats::accuracy(fit.prediction, gt.performance);

        for (std::size_t cap : {1u, 2u}) {
            estimators::LeoOptions capped = opt;
            capped.maxIterations = cap;
            capped.tolerance = 0.0;
            const double acc = stats::accuracy(
                estimators::LeoEstimator(capped)
                    .fitMetric(prior, obs.indices, obs.performance)
                    .prediction,
                gt.performance);
            (cap == 1 ? r.accuracyCap1 : r.accuracyCap2) += acc;
        }
        ++count;
    }
    const double n = static_cast<double>(count);
    r.meanIterations /= n;
    r.accuracyCap1 /= n;
    r.accuracyCap2 /= n;
    r.accuracyConverged /= n;
    return r;
}

} // namespace

int
main()
{
    bench::banner("Ablation 1 — EM initialization (offline vs zero)",
                  "Section 5.5 recommends offline init; with a small "
                  "initial sigma^2 one M-step makes the inits "
                  "coincide — the init only matters when the "
                  "initial noise level is badly overestimated");

    bench::World w = bench::coreOnlyWorld();
    experiments::TextTable t({"init", "init-sigma2",
                              "mean-iterations", "acc@1-iter",
                              "acc@2-iter", "acc@converged"});
    for (auto [name, init] :
         {std::pair{"offline", estimators::EmInit::Offline},
          std::pair{"zero", estimators::EmInit::Zero}}) {
        for (double s2 : {0.01, 1.0}) {
            const InitResult r = evaluate(w, init, s2);
            t.addRow({name, experiments::fmt(s2, 2),
                      experiments::fmt(r.meanIterations, 1),
                      experiments::fmt(r.accuracyCap1),
                      experiments::fmt(r.accuracyCap2),
                      experiments::fmt(r.accuracyConverged)});
        }
    }
    std::printf("%s", t.render().c_str());
    return 0;
}
