/**
 * @file
 * Figure 10: measured energy vs utilization for kmeans, swish and
 * x264 under every approach.
 *
 * Protocol of Section 6.4: fixed deadline, workload swept so the
 * implied utilization covers 1..100% of each application's peak
 * rate; each approach estimates once, plans (Equation 1) and is
 * executed against the truth. The paper's claim: LEO is lowest
 * across the full range; all approaches beat race-to-idle.
 */

#include "bench_common.hh"

#include "experiments/energy.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 10 — energy vs utilization "
                  "(kmeans, swish, x264)",
                  "LEO tracks optimal across the whole range; "
                  "race-to-idle is flat and wasteful");

    bench::World w = bench::fullWorld();
    experiments::EnergyOptions opt;
    opt.utilizationLevels = 20; // paper plots 100; 20 keeps it quick
    opt.sampleBudget = 20;
    opt.seed = bench::seed();

    for (const char *name : {"kmeans", "swish", "x264"}) {
        auto curve = experiments::runEnergyExperiment(
            workloads::profileByName(name), w.machine, w.space,
            w.store.without(name), opt);

        std::printf("--- %s ---\n", name);
        experiments::TextTable t({"util%", "leo-J", "online-J",
                                  "offline-J", "race-J",
                                  "optimal-J"});
        for (const auto &p : curve.points) {
            t.addRow({experiments::fmt(100.0 * p.utilization, 0),
                      experiments::fmt(p.leo, 0),
                      experiments::fmt(p.online, 0),
                      experiments::fmt(p.offline, 0),
                      experiments::fmt(p.raceToIdle, 0),
                      experiments::fmt(p.optimal, 0)});
        }
        std::printf("%s", t.render().c_str());
        std::printf("mean/optimal: leo %.3f  online %.3f  offline "
                    "%.3f  race %.3f\n\n",
                    curve.meanRelative(&experiments::EnergyPoint::leo),
                    curve.meanRelative(
                        &experiments::EnergyPoint::online),
                    curve.meanRelative(
                        &experiments::EnergyPoint::offline),
                    curve.meanRelative(
                        &experiments::EnergyPoint::raceToIdle));
    }
    return 0;
}
