/**
 * @file
 * Figure 13: fluidanimate transitioning through phases.
 *
 * Closed-loop run on the full 1024-configuration space: frames 0..99 are the
 * heavy phase, 100..199 the light phase (2/3 the work per frame).
 * Prints per-frame normalized performance (a) and power above idle
 * (b) for LEO, Offline, Online and the oracle. The paper's claims:
 * every approach meets the performance goal in both phases (gradient
 * ascent), and LEO's power hugs the oracle's after the transition.
 */

#include "bench_common.hh"

#include "runtime/phased_run.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 13 — phased fluidanimate, closed loop",
                  "all approaches meet the demand; LEO's power is "
                  "near-oracle in both phases");

    bench::World w = bench::fullWorld();
    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(400);
    auto prior = w.store.without("fluidanimate");

    workloads::ApplicationModel heavy(app.phases()[0].profile,
                                      w.machine);
    auto gt = workloads::computeGroundTruth(heavy, w.space);
    runtime::ControllerOptions opt;
    opt.targetRate = 0.6 * gt.performance.max();
    opt.sampleBudget = 20;

    estimators::LeoEstimator leo;
    estimators::OnlineEstimator online;
    estimators::OfflineEstimator offline;

    struct Variant
    {
        const char *name;
        const estimators::Estimator *est;
        const telemetry::ProfileStore *prior;
    };
    const Variant variants[] = {
        {"leo", &leo, &prior},
        {"online", &online, &prior},
        {"offline", &offline, &prior},
        {"oracle", nullptr, &w.store},
    };

    std::vector<runtime::PhasedRunResult> results;
    for (const Variant &v : variants) {
        stats::Rng rng(bench::seed());
        results.push_back(runtime::runPhased(
            app, w.machine, w.space, v.est, *v.prior, opt, rng));
    }

    std::printf("frame  |  rate/target: leo online offline oracle  |"
                "  power-above-idle-W: leo online offline oracle\n");
    const double idle = w.machine.spec().idleSystemPowerW;
    for (std::size_t f = 0; f < app.totalFrames(); f += 20) {
        std::printf("%5zu  |  %5.2f %6.2f %7.2f %6.2f  |  "
                    "%6.1f %6.1f %7.1f %6.1f%s\n",
                    f, results[0].trace[f].normalizedPerformance,
                    results[1].trace[f].normalizedPerformance,
                    results[2].trace[f].normalizedPerformance,
                    results[3].trace[f].normalizedPerformance,
                    results[0].trace[f].powerWatts - idle,
                    results[1].trace[f].powerWatts - idle,
                    results[2].trace[f].powerWatts - idle,
                    results[3].trace[f].powerWatts - idle,
                    f == 400 ? "   <-- phase change" : "");
    }
    std::printf("\ndeadline hit rate: leo %.2f  online %.2f  offline "
                "%.2f  oracle %.2f\n",
                results[0].deadlineHitRate,
                results[1].deadlineHitRate,
                results[2].deadlineHitRate,
                results[3].deadlineHitRate);
    std::printf("re-estimations:    leo %zu  online %zu  offline %zu\n",
                results[0].reestimations, results[1].reestimations,
                results[2].reestimations);
    return 0;
}
