# One binary per paper table/figure (see DESIGN.md section 5).
function(leo_add_bench name)
    add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
    target_link_libraries(${name} PRIVATE leo_core leo_experiments)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

leo_add_bench(fig01_motivation)
leo_add_bench(fig04_covariance)
leo_add_bench(fig05_perf_accuracy)
leo_add_bench(fig06_power_accuracy)
leo_add_bench(fig07_perf_examples)
leo_add_bench(fig08_power_examples)
leo_add_bench(fig09_pareto)
leo_add_bench(fig10_energy_vs_utilization)
leo_add_bench(fig11_energy_summary)
leo_add_bench(fig12_sensitivity)
leo_add_bench(fig13_phases)
leo_add_bench(tab01_phase_energy)

# Robustness fault sweep (repository addition, DESIGN.md section 8).
leo_add_bench(tab02_fault_sweep)
target_link_libraries(tab02_fault_sweep PRIVATE leo_faults)

# Global co-scheduling vs per-app greedy under a shared power cap
# (repository addition, DESIGN.md "Global co-scheduling");
# hand-emits google-benchmark JSON (BENCH_global.json) for
# tools/bench_diff.py.
leo_add_bench(tab03_global_cap)

# Change-point adaptation vs the fixed drift window over
# DSL-authored scenarios (repository addition, DESIGN.md "Scenarios
# and change-point adaptation"); hand-emits google-benchmark JSON
# (BENCH_scenario.json) for tools/bench_diff.py.
leo_add_bench(tab04_changepoint)

# Section 6.7 overhead microbenchmark (google-benchmark).
leo_add_bench(overhead_leo)
target_link_libraries(overhead_leo PRIVATE benchmark::benchmark)

# Batch-fit scaling: serial vs parallel wall time plus a bitwise
# determinism cross-check (plain chrono, no google-benchmark).
leo_add_bench(overhead_parallel)

# Multi-tenant serving-core throughput at 1/4/16 shards with a
# bitwise schedule cross-check; hand-emits google-benchmark JSON
# (BENCH_service.json) for tools/bench_diff.py.
leo_add_bench(overhead_service)

# Ablation benches for the design choices called out in DESIGN.md.
leo_add_bench(abl01_em_init)
leo_add_bench(abl02_active_sampling)
leo_add_bench(abl03_hyperparams)
