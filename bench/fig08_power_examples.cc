/**
 * @file
 * Figure 8: LEO power estimates vs configuration index for kmeans,
 * swish and x264 on the full 1024-configuration space (total system
 * Watts), decimated to every 16th index.
 */

#include "bench_common.hh"

#include "stats/metrics.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 8 — power estimates vs configuration index "
                  "(kmeans, swish, x264)",
                  "estimated Watts overlay the measured series");

    bench::World w = bench::fullWorld();
    stats::Rng rng(bench::seed());
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler policy;
    estimators::LeoEstimator leo;

    for (const char *name : {"kmeans", "swish", "x264"}) {
        auto prior = w.store.without(name);
        workloads::ApplicationModel app(
            workloads::profileByName(name), w.machine);
        auto truth = workloads::computeGroundTruth(app, w.space);
        auto obs = profiler.sample(app, w.space, policy, 20, rng);

        auto est = leo.estimateMetric(
            w.space,
            estimators::priorVectors(prior,
                                     estimators::Metric::Power),
            obs.indices, obs.power);

        std::printf("--- %s (accuracy %.3f) ---\n", name,
                    stats::accuracy(est.values, truth.power));
        std::printf("index  true-W  leo-W\n");
        for (std::size_t c = 0; c < w.space.size(); c += 16) {
            std::printf("%5zu  %6.1f  %5.1f\n", c, truth.power[c],
                        est.values[c]);
        }
        std::printf("\n");
    }
    return 0;
}
