/**
 * @file
 * Serial-vs-parallel wall time of the multi-application batch fit.
 *
 * Times the 25-benchmark leave-one-out EM sweep (one LEO fit per
 * target application, the workload behind Figures 5-6) through
 * estimators::EstimatorBatch at increasing pool sizes, reports the
 * speedup over the zero-worker serial pool, and cross-checks that
 * every pool size produced bitwise-identical predictions — the
 * determinism guarantee of parallel/parallel_for.hh.
 *
 * Environment knobs (bench_common.hh conventions):
 *   LEO_BENCH_FULL=1    run on the full 1024-config space
 *                       (default: the 256-config reduction)
 *   LEO_BENCH_REPEATS   timing repeats, best-of (default 3)
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "estimators/batch.hh"
#include "parallel/thread_pool.hh"

using namespace leo;

namespace
{

/** Wall time of one batch run in milliseconds. */
double
timeBatch(const estimators::LeoEstimator &est,
          parallel::ThreadPool &pool,
          const platform::ConfigSpace &space,
          const std::vector<estimators::EstimateRequest> &requests,
          std::vector<estimators::MetricEstimate> &results)
{
    estimators::EstimatorBatch batch(est, pool);
    for (const auto &r : requests)
        batch.add(r);
    const auto t0 = std::chrono::steady_clock::now();
    results = batch.run(space);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool
identical(const std::vector<estimators::MetricEstimate> &a,
          const std::vector<estimators::MetricEstimate> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].values.size() != b[i].values.size())
            return false;
        for (std::size_t j = 0; j < a[i].values.size(); ++j)
            if (a[i].values[j] != b[i].values[j])
                return false;
    }
    return true;
}

} // namespace

int
main()
{
    bench::banner("overhead_parallel — batch EM fit scaling",
                  "Section 6.7 overhead; parallel subsystem "
                  "acceptance (DESIGN.md, Parallel execution)");

    platform::Machine machine;
    const bool full = experiments::envSize("LEO_BENCH_FULL", 0) != 0;
    bench::World world = bench::makeWorld(
        full ? platform::ConfigSpace::fullFactorial(machine)
             : platform::ConfigSpace::reducedFactorial(machine, 2, 2));
    const std::size_t repeats =
        experiments::envSize("LEO_BENCH_REPEATS", 3);

    // One leave-one-out request per benchmark, observations drawn
    // with the standard budget of 20.
    stats::Rng rng(bench::seed());
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;
    const telemetry::Profiler profiler(monitor, meter);
    const telemetry::RandomSampler policy;
    std::vector<estimators::EstimateRequest> requests;
    for (const auto &profile : workloads::standardSuite()) {
        const workloads::ApplicationModel model(profile,
                                                world.machine);
        const auto obs = profiler.sample(model, world.space, policy,
                                         20, rng);
        estimators::EstimateRequest req;
        req.prior = estimators::priorVectors(
            world.store.without(profile.name),
            estimators::Metric::Performance);
        req.obsIndices = obs.indices;
        req.obsValues = obs.performance;
        requests.push_back(std::move(req));
    }
    std::printf("%zu applications, %zu configurations, "
                "hardware concurrency %zu\n\n",
                requests.size(), world.space.size(),
                static_cast<std::size_t>(
                    std::thread::hardware_concurrency()));

    const estimators::LeoEstimator est;
    std::printf("%-10s %12s %10s %10s\n", "threads", "best ms",
                "speedup", "bitwise");

    std::vector<estimators::MetricEstimate> serial_results;
    double serial_ms = 0.0;
    const std::size_t concurrencies[] = {
        1, 2, 4, parallel::ThreadPool::defaultConcurrency()};
    for (std::size_t conc : concurrencies) {
        parallel::ThreadPool pool(conc - 1);
        std::vector<estimators::MetricEstimate> results;
        double best = 0.0;
        for (std::size_t r = 0; r < repeats; ++r) {
            const double ms = timeBatch(est, pool, world.space,
                                        requests, results);
            if (r == 0 || ms < best)
                best = ms;
        }
        if (conc == 1) {
            serial_ms = best;
            serial_results = results;
        }
        std::printf("%-10zu %12.1f %9.2fx %10s\n", conc, best,
                    serial_ms / best,
                    identical(serial_results, results) ? "yes"
                                                       : "NO");
    }
    std::printf("\nNote: speedup saturates at the physical core "
                "count; on a single-core host all rows time the "
                "same inline path.\n");
    return 0;
}
