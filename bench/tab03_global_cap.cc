/**
 * @file
 * Table 3 (repository addition): global co-scheduling vs per-app
 * greedy under a shared power cap.
 *
 * Sweeps a machine-wide average-power cap over multi-app fleets and
 * compares planGlobalSchedule (the joint LP of
 * src/optimizer/global.hh) against planPerAppGreedy (apps planned
 * one at a time against leftover interval budgets). Two fleet
 * families are measured:
 *
 *   - ground-truth fleets built from the simulator's true
 *     performance/power vectors (x264, kmeans, swish) with staggered
 *     deadlines, the shape a serving deployment sees;
 *   - a crafted adversarial fleet whose loose-deadline app tempts
 *     greedy into front-loading the early interval, starving the
 *     tight-deadline app that the global plan places easily.
 *
 * For every (fleet, cap) cell the table reports predicted energy and
 * feasibility for both planners plus whether the cap actually binds
 * (some interval's average power sits on the cap). The acceptance
 * gate requires at least one cap-bound cell where the global plan
 * beats greedy — by energy, or by staying feasible where greedy is
 * not — and that greedy never beats global when both are feasible
 * (greedy's outcome is a feasible point of the global program, so
 * that would be a planner bug).
 *
 * Emits google-benchmark-format JSON (consumed by
 * tools/bench_diff.py in CI) to BENCH_global.json, or to argv[1]
 * when given.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "optimizer/global.hh"
#include "workloads/ground_truth.hh"

using namespace leo;

namespace
{

struct Fleet
{
    std::string name;
    std::vector<optimizer::TenantDemand> demands;
    double idlePower = 0.0;
};

/** A demand scaled off an app's true peak rate. */
optimizer::TenantDemand
demandFor(const workloads::GroundTruth &truth, double utilization,
          double deadline_s)
{
    double peak = 0.0;
    for (std::size_t c = 0; c < truth.performance.size(); ++c)
        peak = std::max(peak, truth.performance[c]);
    optimizer::TenantDemand d;
    d.performance = truth.performance;
    d.power = truth.power;
    d.constraint = {utilization * peak * deadline_s, deadline_s};
    return d;
}

/** Highest per-configuration power anywhere in the fleet. */
double
peakPower(const Fleet &fleet)
{
    double peak = fleet.idlePower;
    for (const auto &d : fleet.demands)
        for (std::size_t c = 0; c < d.power.size(); ++c)
            peak = std::max(peak, d.power[c]);
    return peak;
}

/**
 * True iff some interval's average power sits on the cap (within a
 * relative epsilon): the cap row is active, so the cell genuinely
 * exercises the constrained program rather than the uncapped one.
 */
bool
capBinds(const optimizer::GlobalSchedule &plan, double cap,
         double idle)
{
    if (!std::isfinite(cap))
        return false;
    double prev_end = 0.0;
    for (const auto &iv : plan.intervals) {
        const double span = iv.endSeconds - prev_end;
        prev_end = iv.endSeconds;
        if (span <= 0.0)
            continue;
        const double avg =
            idle +
            (iv.activeEnergyJoules - idle * iv.busySeconds) / span;
        if (avg >= cap - 1e-6 * std::max(1.0, cap))
            return true;
    }
    return false;
}

/**
 * The crafted starvation fleet (pinned in tests/global_test.cc): a
 * loose-deadline app whose energy optimum fills its whole window
 * plus a tight-deadline app that needs most of the early interval.
 * Greedy plans the loose app first and front-loads it, leaving the
 * tight app nothing; the global LP shifts the loose app late.
 */
Fleet
craftedFleet()
{
    Fleet fleet;
    fleet.name = "crafted_starvation";
    fleet.idlePower = 85.0;
    const linalg::Vector perf{1.0, 2.5, 4.0};
    const linalg::Vector power{100.0, 130.0, 220.0};
    fleet.demands.push_back({perf, power, {20.0, 10.0}});
    fleet.demands.push_back({perf, power, {18.0, 5.0}});
    return fleet;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("tab03_global_cap — co-scheduling vs greedy",
                  "Global LP under a shared power cap (DESIGN.md, "
                  "Global co-scheduling)");

    platform::Machine machine;
    bench::World world = bench::makeWorld(
        platform::ConfigSpace::reducedFactorial(machine, 2, 2));
    const double idle = world.machine.spec().idleSystemPowerW;

    const auto truthFor = [&](const char *app) {
        return workloads::computeGroundTruth(
            workloads::ApplicationModel(workloads::profileByName(app),
                                        world.machine),
            world.space);
    };
    const auto x264 = truthFor("x264");
    const auto kmeans = truthFor("kmeans");
    const auto swish = truthFor("swish");

    std::vector<Fleet> fleets;
    // A loose video tenant plus a tight analytics tenant: the shape
    // where greedy's front-loading starves the second app.
    fleets.push_back({"pair_x264_kmeans",
                      {demandFor(x264, 0.5, 10.0),
                       demandFor(kmeans, 0.7, 5.0)},
                      idle});
    // Three tenants, three deadlines; utilizations keep the fastest
    // configuration's total busy time just under the horizon so the
    // interesting caps bind rather than trivially break the fleet.
    fleets.push_back({"triple_mixed",
                      {demandFor(x264, 0.3, 10.0),
                       demandFor(kmeans, 0.5, 7.0),
                       demandFor(swish, 0.6, 5.0)},
                      idle});
    fleets.push_back(craftedFleet());

    // Cap sweep: fractions of the fleet's headroom above idle.
    // INFINITY is the uncapped reference column.
    const double fractions[] = {INFINITY, 0.95, 0.85, 0.75, 0.65};

    std::string json = "{\n  \"context\": {\"executable\": "
                       "\"tab03_global_cap\"},\n  \"benchmarks\": [\n";
    bool first_row = true;
    bool cap_bound_win = false;
    bool greedy_beat_global = false;

    for (const auto &fleet : fleets) {
        const double headroom = peakPower(fleet) - fleet.idlePower;
        std::printf("--- %s (%zu apps, idle %.0f W, peak %.0f W) "
                    "---\n",
                    fleet.name.c_str(), fleet.demands.size(),
                    fleet.idlePower, peakPower(fleet));
        experiments::TextTable t({"cap-W", "global-J", "greedy-J",
                                  "gap%", "g-feas", "gr-feas",
                                  "bound"});
        std::size_t global_ok = 0, greedy_ok = 0, cells = 0;
        for (const double frac : fractions) {
            const double cap =
                std::isfinite(frac)
                    ? fleet.idlePower + frac * headroom
                    : optimizer::kNoPowerCap;
            optimizer::GlobalPlanOptions gopt;
            gopt.powerCapWatts = cap;

            const auto t0 = std::chrono::steady_clock::now();
            const auto global = optimizer::planGlobalSchedule(
                fleet.demands, fleet.idlePower, gopt);
            const auto greedy = optimizer::planPerAppGreedy(
                fleet.demands, fleet.idlePower, gopt);
            const auto t1 = std::chrono::steady_clock::now();
            const double ms =
                std::chrono::duration<double, std::milli>(t1 - t0)
                    .count();

            ++cells;
            global_ok += global.feasible ? 1 : 0;
            greedy_ok += greedy.feasible ? 1 : 0;
            const bool bound =
                capBinds(global, cap, fleet.idlePower);
            const double gap =
                greedy.predictedEnergy > 0.0
                    ? 100.0 *
                          (greedy.predictedEnergy -
                           global.predictedEnergy) /
                          greedy.predictedEnergy
                    : 0.0;
            // Greedy's plan is a feasible point of the global
            // program, so the global optimum can never sit above it.
            if (global.feasible && greedy.feasible &&
                global.predictedEnergy >
                    greedy.predictedEnergy * (1.0 + 1e-6))
                greedy_beat_global = true;
            if (bound && global.feasible &&
                (!greedy.feasible ||
                 greedy.predictedEnergy >
                     global.predictedEnergy * (1.0 + 1e-9)))
                cap_bound_win = true;

            t.addRow({std::isfinite(cap) ? experiments::fmt(cap, 1)
                                         : "none",
                      experiments::fmt(global.predictedEnergy, 1),
                      experiments::fmt(greedy.predictedEnergy, 1),
                      experiments::fmt(gap, 2),
                      global.feasible ? "yes" : "NO",
                      greedy.feasible ? "yes" : "NO",
                      bound ? "yes" : "-"});

            char row[512];
            std::snprintf(
                row, sizeof(row),
                "%s    {\"name\": \"BM_GlobalCap/%s/frac:%s\", "
                "\"run_type\": \"iteration\", \"iterations\": 1, "
                "\"real_time\": %.4f, \"cpu_time\": %.4f, "
                "\"time_unit\": \"ms\", "
                "\"global_energy_joules\": %.3f, "
                "\"greedy_energy_joules\": %.3f, "
                "\"global_feasible\": %d, \"greedy_feasible\": %d, "
                "\"cap_bound\": %d}",
                first_row ? "" : ",\n", fleet.name.c_str(),
                std::isfinite(frac)
                    ? experiments::fmt(frac, 2).c_str()
                    : "none",
                ms, ms, global.predictedEnergy,
                greedy.predictedEnergy, global.feasible ? 1 : 0,
                greedy.feasible ? 1 : 0, bound ? 1 : 0);
            json += row;
            first_row = false;
        }
        std::printf("%s", t.render().c_str());
        std::printf("feasibility: global %zu/%zu, greedy %zu/%zu\n\n",
                    global_ok, cells, greedy_ok, cells);

        char row[256];
        std::snprintf(
            row, sizeof(row),
            ",\n    {\"name\": \"BM_GlobalCap/%s/feasibility\", "
            "\"run_type\": \"iteration\", \"iterations\": 1, "
            "\"real_time\": 0.0, \"cpu_time\": 0.0, "
            "\"time_unit\": \"ms\", "
            "\"global_feasible_rate\": %.3f, "
            "\"greedy_feasible_rate\": %.3f}",
            fleet.name.c_str(),
            static_cast<double>(global_ok) /
                static_cast<double>(cells),
            static_cast<double>(greedy_ok) /
                static_cast<double>(cells));
        json += row;
    }
    json += "\n  ]\n}\n";

    const std::string out =
        argc > 1 ? argv[1] : "BENCH_global.json";
    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", out.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (greedy_beat_global) {
        std::fprintf(stderr,
                     "FAIL: greedy beat the global plan with both "
                     "feasible — the LP left energy on the table\n");
        return 1;
    }
    if (!cap_bound_win) {
        std::fprintf(stderr,
                     "FAIL: no cap-bound cell where the global plan "
                     "beats per-app greedy\n");
        return 1;
    }
    std::printf("acceptance OK: global beats greedy on at least one "
                "cap-bound cell\n");
    return 0;
}
