/**
 * @file
 * Figure 12: estimation accuracy vs number of measured samples.
 *
 * Sweeps the sample budget and reports mean accuracy over the suite
 * for LEO and the Online baseline, for both performance (a) and
 * power (b). Paper claims: the online method is rank deficient —
 * effectively 0 accuracy — below 15 samples; LEO with 0 samples
 * equals the offline method and climbs quickly.
 *
 * Default runs on a 512-configuration reduction of the space to
 * bound single-core runtime; set LEO_BENCH_FULL=1 for all 1024
 * configurations (the sample-count thresholds do not depend on the
 * space size).
 */

#include "bench_common.hh"

#include "experiments/accuracy.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 12 — accuracy vs sample size",
                  "online needs >= 15 samples (design-matrix rank); "
                  "LEO degrades gracefully to offline at 0");

    bench::World w = bench::sweepWorld();
    std::printf("space: %s, trials per point: %zu\n\n",
                w.space.name().c_str(), bench::trials(1));

    const std::size_t budgets[] = {0,  5,  10, 14, 15,
                                   20, 30, 50, 80};

    for (auto metric : {estimators::Metric::Performance,
                        estimators::Metric::Power}) {
        std::printf("(%s)\n",
                    metric == estimators::Metric::Performance
                        ? "a: performance"
                        : "b: power");
        experiments::TextTable t(
            {"samples", "leo", "online", "offline"});
        for (std::size_t budget : budgets) {
            experiments::AccuracyOptions opt;
            opt.trials = bench::trials(1);
            opt.sampleBudget = budget;
            opt.seed = bench::seed() + budget;
            auto rows = experiments::runAccuracyExperiment(
                metric, w.machine, w.space,
                workloads::standardSuite(), opt);
            t.addRow({std::to_string(budget),
                      experiments::fmt(experiments::meanAccuracy(
                          rows, &experiments::AccuracyRow::leo)),
                      experiments::fmt(experiments::meanAccuracy(
                          rows, &experiments::AccuracyRow::online)),
                      experiments::fmt(experiments::meanAccuracy(
                          rows, &experiments::AccuracyRow::offline))});
        }
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
