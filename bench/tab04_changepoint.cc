/**
 * @file
 * Table 4 (repository addition): change-point adaptation vs the
 * fixed-window drift trigger.
 *
 * Runs DSL-authored scenarios (scenario/spec.hh) through the closed
 * loop twice — once with the legacy EWMA-history drift trigger
 * (changepoint off) and once with the CUSUM change-point detector
 * (coldrefit) — and compares energy under the real-time deadline.
 * The scenario family is built around the fixed trigger's blind
 * spot: it compares each configuration's measurement against its own
 * history, so any phase change that moves the operating point's rate
 * by less than the 20% threshold per boundary is invisible — even
 * when the change *reorders* the configuration space, leaving the
 * stale map's frontier badly wrong. The scenarios morph swaptions
 * into kmeans with the kmeans base rate scaled so the rate at
 * swaptions' energy-optimal configuration moves ~10-15% per
 * boundary: sub-threshold, but the efficient configuration shifts
 * from a high-frequency point to kmeans' peak — ~4x cheaper in
 * active energy (the scale constants below pin that match on the
 * bench space and are asserted at startup):
 *
 *   - drifting: swaptions, then kmeans stepping ~10% slower per
 *     phase — the fixed controller paces the stale swaptions map to
 *     the end;
 *   - oscillating: alternating swaptions / kmeans phases, each
 *     boundary sub-threshold — fixed burns the stale configuration
 *     through every kmeans phase;
 *   - load_spike: a deepening kmeans slowdown (three 15% steps) that
 *     ends below the demand — fixed either misses for the whole
 *     spike or boosts along the wrong frontier;
 *   - trace_replay: a two-segment sparse trace through the replay
 *     backend (interpolation + segment switching), report-only.
 *
 * Acceptance: for the three phased scenarios, the change-point run
 * must strictly dominate on energy-under-deadline — strictly less
 * energy per deadline-hit (totalEnergy / deadlineHitRate) and a hit
 * rate no more than 3 points worse. Emits google-benchmark-format
 * JSON (BENCH_scenario.json, or argv[1]) for tools/bench_diff.py.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "scenario/scenario.hh"

using namespace leo;

namespace
{

/**
 * The kmeans base-rate multiplier that matches swaptions' rate at
 * swaptions' energy-optimal configuration of the bench space (so a
 * swaptions -> kmeans * kMatch boundary moves the operating point's
 * rate by 0%). The per-phase scales below are kMatch times 0.9,
 * 0.82, ... — each boundary a sub-threshold rate step. Asserted
 * against the live models in main(): if the suite profiles change,
 * the bench fails loudly instead of silently losing its blind spot.
 */
constexpr double kMatch = 10.727597;

/** The three adversarial phased scenarios, as DSL text. */
std::vector<std::string>
phasedScenarioTexts()
{
    return {
        "name drifting\n"
        "workload phased\n"
        "seed 42\n"
        "phase swaptions frames=100 scale=1.0\n"
        "phase kmeans frames=75 scale=9.654837\n"  // 0.90 kMatch
        "phase kmeans frames=75 scale=8.796630\n"  // 0.82 kMatch
        "phase kmeans frames=75 scale=7.938422\n"  // 0.74 kMatch
        "phase kmeans frames=75 scale=7.187490\n", // 0.67 kMatch

        "name oscillating\n"
        "workload phased\n"
        "seed 42\n"
        "phase swaptions frames=120 scale=1.0\n"
        "phase kmeans frames=120 scale=9.654837\n"
        "phase swaptions frames=120 scale=1.0\n"
        "phase kmeans frames=120 scale=9.654837\n",

        // The explicit target keeps the demand off a knife edge: the
        // auto target (892.71) lands 0.1% above a configuration's
        // exact rate in the 0.7225-kMatch phase, where the
        // controller's deliberate 2% hysteresis band and the strict
        // deadline accounting disagree for the whole phase.
        "name load_spike\n"
        "workload phased\n"
        "seed 42\n"
        "target 880\n"
        "phase swaptions frames=100 scale=1.0\n"
        "phase kmeans frames=70 scale=9.118457\n"  // 0.85   kMatch
        "phase kmeans frames=70 scale=7.750689\n"  // 0.7225 kMatch
        "phase kmeans frames=140 scale=6.588085\n" // 0.6141 kMatch
        "phase swaptions frames=100 scale=1.0\n",
    };
}

/** A sparse two-segment trace over the bench space: rows at the
 *  ends and middle only, so the replay interpolates the rest. */
std::string
traceScenarioText(const bench::World &world)
{
    const platform::ConfigSpace &space = world.space;
    workloads::ApplicationModel model(
        workloads::profileByName("x264"), world.machine);
    const std::size_t last = space.size() - 1;
    const std::size_t rows[] = {0, last / 2, last};
    std::string text = "name trace_replay\nworkload trace\n"
                       "seed 42\nframes 160\ntrace_inline <<END\n";
    for (const double scale : {1.0, 1.5}) {
        text += "segment,80\n";
        for (const std::size_t c : rows) {
            const platform::ResourceAssignment &ra =
                space.assignment(c);
            char row[96];
            std::snprintf(row, sizeof(row), "%zu,%.6f,%.3f\n", c,
                          scale * model.heartbeatRate(ra),
                          model.powerWatts(ra));
            text += row;
        }
    }
    text += "END\n";
    return text;
}

struct Cell
{
    scenario::RunResult result;
    double score = 0.0; //!< Energy per deadline-hit fraction.
};

Cell
runCell(const scenario::Spec &spec, const bench::World &world,
        const estimators::LeoEstimator &leo,
        const telemetry::ProfileStore &prior)
{
    scenario::Scenario sc(spec, world.machine, world.space);
    runtime::ControllerOptions base;
    base.sampleBudget = 6;
    // A 6-probe fit on a 256-config space is both biased and
    // underconfident away from the probes: pin the standardization
    // scale near the measurement noise (heartbeat noise is 2%
    // relative) so the 10-15% phase steps score at z >= 2, let the
    // longer warmup estimate the fit bias the detector centers out,
    // and lift drift/threshold to absorb the residual noise.
    base.changePoint.minRelativeSigma = 0.03;
    base.changePoint.maxRelativeSigma = 0.05;
    base.changePoint.warmupWindows = 4;
    base.changePoint.cusumDrift = 0.6;
    base.changePoint.cusumThreshold = 8.0;
    Cell cell;
    cell.result = scenario::runScenario(sc, &leo, prior, base);
    const double hits = std::max(cell.result.deadlineHitRate, 1e-6);
    cell.score = cell.result.totalEnergy / hits;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("tab04_changepoint — change-point vs fixed window",
                  "online phase-change adaptation (DESIGN.md, "
                  "Scenarios and change-point adaptation)");

    platform::Machine machine;
    bench::World world = bench::makeWorld(
        platform::ConfigSpace::reducedFactorial(machine, 2, 2));
    const estimators::LeoEstimator leo;
    const telemetry::ProfileStore &prior = world.store;

    // Pin the blind-spot construction: kMatch must still equate
    // kmeans' rate with swaptions' at swaptions' energy-optimal
    // configuration, or the scenario scales no longer mean anything.
    {
        const auto swap_truth = workloads::computeGroundTruth(
            workloads::ApplicationModel(
                workloads::profileByName("swaptions"),
                world.machine),
            world.space);
        const auto km_truth = workloads::computeGroundTruth(
            workloads::ApplicationModel(
                workloads::profileByName("kmeans"), world.machine),
            world.space);
        const double idle = world.machine.spec().idleSystemPowerW;
        double peak = 0.0;
        for (std::size_t c = 0; c < world.space.size(); ++c)
            peak = std::max(peak, swap_truth.performance[c]);
        std::size_t c0 = 0;
        double best = 1e300;
        for (std::size_t c = 0; c < world.space.size(); ++c) {
            if (swap_truth.performance[c] < 0.5 * peak)
                continue;
            const double e = (swap_truth.power[c] - idle) /
                             swap_truth.performance[c];
            if (e < best) {
                best = e;
                c0 = c;
            }
        }
        const double ratio = swap_truth.performance[c0] /
                             km_truth.performance[c0];
        if (std::abs(ratio - kMatch) > 0.01 * kMatch) {
            std::fprintf(stderr,
                         "FAIL: kMatch drifted (want %.6f, model "
                         "says %.6f) — retune the scenario scales\n",
                         kMatch, ratio);
            return 1;
        }
    }

    std::vector<std::string> texts = phasedScenarioTexts();
    texts.push_back(traceScenarioText(world));

    std::string json =
        "{\n  \"context\": {\"executable\": "
        "\"tab04_changepoint\"},\n  \"benchmarks\": [\n";
    bool first_row = true;
    bool dominated = true;

    experiments::TextTable table(
        {"scenario", "policy", "energy-J", "hit-rate", "refits",
         "cps", "J/hit"});

    for (const std::string &text : texts) {
        const scenario::Spec base = scenario::Spec::fromString(text);
        // Dogfood the grid: the two policies are one swept axis.
        const auto cells = scenario::expandGrid(
            base, {{"changepoint", {"off", "coldrefit"}}});
        std::vector<Cell> runs;
        for (const scenario::Spec &spec : cells) {
            runs.push_back(runCell(spec, world, leo, prior));
            const Cell &cell = runs.back();
            table.addRow(
                {base.name,
                 spec.changePointPolicy ==
                         runtime::ChangePointPolicy::Off
                     ? "fixed"
                     : "changepoint",
                 experiments::fmt(cell.result.totalEnergy, 1),
                 experiments::fmt(cell.result.deadlineHitRate, 3),
                 std::to_string(cell.result.reestimations),
                 std::to_string(cell.result.changePoints),
                 experiments::fmt(cell.score, 1)});

            char row[512];
            std::snprintf(
                row, sizeof(row),
                "%s    {\"name\": \"BM_ChangePoint/%s/%s\", "
                "\"run_type\": \"iteration\", \"iterations\": 1, "
                "\"real_time\": 0.0, \"cpu_time\": 0.0, "
                "\"time_unit\": \"ms\", "
                "\"energy_joules\": %.3f, "
                "\"deadline_hit_rate\": %.4f, "
                "\"reestimations\": %zu, "
                "\"change_points\": %zu, "
                "\"energy_per_hit\": %.3f}",
                first_row ? "" : ",\n", base.name.c_str(),
                spec.changePointPolicy ==
                        runtime::ChangePointPolicy::Off
                    ? "fixed"
                    : "changepoint",
                cell.result.totalEnergy,
                cell.result.deadlineHitRate,
                cell.result.reestimations,
                cell.result.changePoints, cell.score);
            json += row;
            first_row = false;
        }

        // The trace scenario is report-only: it exercises the replay
        // backend, not the adaptation comparison.
        if (base.workload != scenario::WorkloadKind::Trace) {
            const Cell &fixed = runs[0], &cp = runs[1];
            if (!(cp.score < fixed.score &&
                  cp.result.deadlineHitRate >=
                      fixed.result.deadlineHitRate - 0.03)) {
                std::fprintf(
                    stderr,
                    "FAIL: %s — change-point does not dominate "
                    "(J/hit %.1f vs %.1f, hit %.3f vs %.3f)\n",
                    base.name.c_str(), cp.score, fixed.score,
                    cp.result.deadlineHitRate,
                    fixed.result.deadlineHitRate);
                dominated = false;
            }
        }
    }
    json += "\n  ]\n}\n";
    std::printf("%s\n", table.render().c_str());

    const std::string out =
        argc > 1 ? argv[1] : "BENCH_scenario.json";
    if (std::FILE *f = std::fopen(out.c_str(), "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote %s\n", out.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    if (!dominated)
        return 1;
    std::printf("acceptance OK: change-point dominates the fixed "
                "window on every adaptation scenario\n");
    return 0;
}
