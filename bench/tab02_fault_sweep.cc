/**
 * @file
 * Table 2 (this repository's addition): robustness fault sweep.
 *
 * Not a paper table — the LEO paper assumes clean telemetry. This
 * bench quantifies the hardened pipeline of DESIGN.md section 8: for
 * each fault scenario the probe observations are corrupted, LEO fits
 * through the sanitizer, and the resulting plan runs under the
 * deadline guard against the ground truth. Reported per scenario:
 * samples rejected by the sanitizer, the fit's mean absolute
 * performance error, guarded energy relative to the true-optimal
 * plan, and the deadline-met rate. The zero-fault row is the
 * baseline: it must match the unhardened pipeline bit for bit
 * (asserted in tests/robustness_test.cc).
 */

#include "bench_common.hh"

#include <cstdint>

#include "faults/faults.hh"
#include "obs/obs.hh"
#include "optimizer/schedule.hh"

using namespace leo;

namespace
{

/** Sanitizer rejections so far, from the global metrics registry. */
std::uint64_t
rejectedSoFar()
{
    return obs::Registry::global().snapshot().counterOr(
        obs::names::kSanitizeSamplesRejected);
}

struct NamedScenario
{
    const char *name;
    faults::FaultScenario scenario;
};

std::vector<NamedScenario>
sweep()
{
    using faults::FaultScenario;
    std::vector<NamedScenario> rows;
    rows.push_back({"none", FaultScenario::none()});
    FaultScenario s;
    s.nanProb = 0.15;
    rows.push_back({"nan 15%", s});
    s = FaultScenario{};
    s.infProb = 0.15;
    rows.push_back({"inf 15%", s});
    s = FaultScenario{};
    s.dropoutProb = 0.15;
    rows.push_back({"dropout 15%", s});
    s = FaultScenario{};
    s.outlierProb = 0.15;
    s.outlierScale = 25.0;
    rows.push_back({"outlier 15%", s});
    s = FaultScenario{};
    s.staleProb = 0.25;
    rows.push_back({"stale 25%", s});
    s = FaultScenario{};
    s.nanProb = 0.05;
    s.infProb = 0.05;
    s.dropoutProb = 0.05;
    s.outlierProb = 0.05;
    s.staleProb = 0.05;
    rows.push_back({"mixed 5x5%", s});
    return rows;
}

} // namespace

int
main()
{
    bench::banner(
        "Table 2 — fault sweep (repository addition, DESIGN.md s.8)",
        "none: sanitizer idle, energy == clean LEO; faulted rows: "
        "all deadlines met, graceful energy cost");

    bench::World w = bench::coreOnlyWorld();
    workloads::ApplicationModel app(workloads::profileByName("x264"),
                                    w.machine);
    const auto prior = w.store.without("x264");
    const auto gt = workloads::computeGroundTruth(app, w.space);
    const double idle = w.machine.spec().idleSystemPowerW;

    optimizer::PerformanceConstraint constraint;
    constraint.deadlineSeconds = 10.0;
    constraint.work = 0.5 * gt.performance.max() * 10.0;
    const auto optimal = optimizer::planMinimalEnergy(
        gt.performance, gt.power, idle, constraint);
    const auto optimal_run = optimizer::executeScheduleGuarded(
        optimal, gt.performance, gt.power, idle, constraint);

    const std::size_t probes = 20;
    const std::size_t reps = bench::trials(5);
    const estimators::LeoEstimator leo;
    const telemetry::RandomSampler policy;
    const telemetry::HeartbeatMonitor inner_monitor;
    const telemetry::WattsUpMeter inner_meter;

    // The "rejected" column reads the sanitizer's own counter from
    // the metrics registry (a snapshot delta per trial) instead of
    // re-summing the per-estimate fields — the bench thereby checks
    // the instrument the pipeline exports. Under LEO_OBS=off the
    // registry is a null sink; fall back to the estimate fields.
    const bool via_obs = obs::Registry::global().enabled();

    experiments::TextTable t({"Scenario", "rejected", "perf-err%",
                              "energy/optimal", "deadline-met"});
    for (const NamedScenario &row : sweep()) {
        double rejected = 0, err = 0, ratio = 0, met = 0;
        for (std::size_t r = 0; r < reps; ++r) {
            obs::Span span(obs::names::kBenchTrialSpan, "bench");
            span.arg("trial", static_cast<double>(r));
            const faults::FaultyHeartbeatMonitor monitor(
                inner_monitor, row.scenario);
            const faults::FaultyPowerMeter meter(inner_meter,
                                                 row.scenario);
            stats::Rng rng(bench::seed() + r);
            const telemetry::Profiler profiler(monitor, meter);
            const auto obs = profiler.sample(app, w.space, policy,
                                             probes, rng);
            const estimators::EstimationInputs inputs{w.space, prior,
                                                      obs};
            const std::uint64_t rej0 = via_obs ? rejectedSoFar() : 0;
            const estimators::Estimate est = leo.estimate(inputs);
            rejected += via_obs
                            ? static_cast<double>(rejectedSoFar() -
                                                  rej0)
                            : static_cast<double>(
                                  est.performance.samplesRejected +
                                  est.power.samplesRejected);
            double e = 0;
            for (std::size_t c = 0; c < w.space.size(); ++c) {
                e += std::abs(est.performance.values[c] -
                              gt.performance[c]) /
                     gt.performance[c];
            }
            err += 100.0 * e / static_cast<double>(w.space.size());
            const auto plan = optimizer::planMinimalEnergy(
                est.performance.values, est.power.values, idle,
                constraint);
            const auto run = optimizer::executeScheduleGuarded(
                plan, gt.performance, gt.power, idle, constraint);
            ratio += run.energyJoules / optimal_run.energyJoules;
            met += run.deadlineMet ? 1.0 : 0.0;
        }
        const double n = static_cast<double>(reps);
        t.addRow({row.name, experiments::fmt(rejected / n),
                  experiments::fmt(err / n),
                  experiments::fmt(ratio / n),
                  experiments::fmt(met / n)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n%zu probes per trial (x2 metrics), %zu trials, "
                "optimal guarded energy %.0f J\n",
                probes, reps, optimal_run.energyJoules);
    return 0;
}
