/**
 * @file
 * Figure 1: the kmeans motivational example.
 *
 * 32-point core-allocation space, 6 observed core counts
 * (5, 10, ..., 30). (a) performance estimates, (b) power estimates,
 * (c) energy versus utilization for LEO / Online / Offline /
 * race-to-idle / optimal. The paper's qualitative claim: only LEO
 * recovers the peak at 8 cores, and that accuracy translates into
 * energy savings across the whole utilization range.
 */

#include "bench_common.hh"

#include "optimizer/schedule.hh"
#include "stats/metrics.hh"

using namespace leo;

int
main()
{
    bench::banner("Figure 1 — kmeans motivation (cores only)",
                  "LEO tracks the 8-core peak from 6 samples; online "
                  "misplaces it; offline predicts the all-apps trend");

    bench::World w = bench::coreOnlyWorld();
    auto prior = w.store.without("kmeans");
    workloads::ApplicationModel kmeans(
        workloads::profileByName("kmeans"), w.machine);
    auto truth = workloads::computeGroundTruth(kmeans, w.space);

    stats::Rng rng(bench::seed());
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    telemetry::Profiler profiler(monitor, meter);
    telemetry::UniformGridSampler grid;
    auto obs = profiler.sample(kmeans, w.space, grid, 6, rng);

    estimators::LeoEstimator leo;
    // Degree 4 on the single core knob: the highest degree the
    // 6-point design supports, matching the paper's online
    // baseline, which bends enough to place a (wrong) peak.
    estimators::OnlineEstimator online(4);
    estimators::OfflineEstimator offline;
    estimators::EstimationInputs inputs{w.space, prior, obs};
    auto e_leo = leo.estimate(inputs);
    auto e_on = online.estimate(inputs);
    auto e_off = offline.estimate(inputs);

    experiments::TextTable perf({"cores", "true", "leo", "online",
                                 "offline"});
    experiments::TextTable power({"cores", "true-W", "leo-W",
                                  "online-W", "offline-W"});
    for (std::size_t c = 0; c < w.space.size(); ++c) {
        perf.addRow({std::to_string(c + 1),
                     experiments::fmt(truth.performance[c], 1),
                     experiments::fmt(e_leo.performance.values[c], 1),
                     experiments::fmt(e_on.performance.values[c], 1),
                     experiments::fmt(e_off.performance.values[c], 1)});
        power.addRow({std::to_string(c + 1),
                      experiments::fmt(truth.power[c], 1),
                      experiments::fmt(e_leo.power.values[c], 1),
                      experiments::fmt(e_on.power.values[c], 1),
                      experiments::fmt(e_off.power.values[c], 1)});
    }
    std::printf("(a) performance estimates from 6 observations\n%s\n",
                perf.render().c_str());
    std::printf("(b) power estimates\n%s\n", power.render().c_str());

    std::printf("peak cores: true %zu, leo %zu, online %zu, "
                "offline %zu\n\n",
                truth.performance.argmax() + 1,
                e_leo.performance.values.argmax() + 1,
                e_on.performance.values.argmax() + 1,
                e_off.performance.values.argmax() + 1);

    // (c) energy vs utilization.
    const double idle = w.machine.spec().idleSystemPowerW;
    experiments::TextTable energy({"util%", "leo-J", "online-J",
                                   "offline-J", "race-J", "optimal-J"});
    for (int u = 5; u <= 100; u += 5) {
        optimizer::PerformanceConstraint c;
        c.deadlineSeconds = 100.0;
        c.work = (u / 100.0) * truth.performance.max() *
                 c.deadlineSeconds;
        auto run = [&](const linalg::Vector &perf_v,
                       const linalg::Vector &pow_v) {
            auto plan = optimizer::planMinimalEnergy(perf_v, pow_v,
                                                     idle, c);
            return optimizer::executeScheduleGuarded(plan, truth.performance,
                                              truth.power, idle, c)
                .energyJoules;
        };
        optimizer::Schedule race;
        race.parts.push_back({w.space.size() - 1, c.deadlineSeconds});
        const double race_j =
            optimizer::executeSchedule(race, truth.performance,
                                       truth.power, idle, c)
                .energyJoules;
        energy.addRow(
            {std::to_string(u),
             experiments::fmt(run(e_leo.performance.values,
                                  e_leo.power.values),
                              0),
             experiments::fmt(run(e_on.performance.values,
                                  e_on.power.values),
                              0),
             experiments::fmt(run(e_off.performance.values,
                                  e_off.power.values),
                              0),
             experiments::fmt(race_j, 0),
             experiments::fmt(run(truth.performance, truth.power), 0)});
    }
    std::printf("(c) energy vs utilization\n%s", energy.render().c_str());
    return 0;
}
