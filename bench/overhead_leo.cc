/**
 * @file
 * Section 6.7: the cost of running LEO itself.
 *
 * The paper measures 0.8 s average execution time per metric on the
 * 2012-era testbed. This google-benchmark binary times one EM fit
 * (per metric) as a function of the configuration-space size, plus
 * the downstream hull walk, which is negligible by comparison.
 */

#include <benchmark/benchmark.h>

#include "estimators/leo.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

struct FitSetup
{
    platform::Machine machine;
    platform::ConfigSpace space;
    std::vector<linalg::Vector> prior;
    std::vector<std::size_t> obs_idx;
    linalg::Vector obs_vals;
};

/** Build a fit problem on a space with the given speed stride. */
FitSetup
makeSetup(unsigned core_stride, unsigned speed_stride)
{
    FitSetup s{platform::Machine{},
               platform::ConfigSpace::reducedFactorial(
                   platform::Machine{}, core_stride, speed_stride),
               {},
               {},
               {}};
    stats::Rng rng(7);
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), s.machine, s.space, monitor,
        meter, rng);
    auto loo = store.without("kmeans");
    s.prior = estimators::priorVectors(
        loo, estimators::Metric::Performance);

    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), s.machine);
    telemetry::Profiler prof(monitor, meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, s.space, pol, 20, rng);
    s.obs_idx = obs.indices;
    s.obs_vals = obs.performance;
    return s;
}

void
BM_LeoFit(benchmark::State &state)
{
    // Space size shrinks with the stride arguments.
    const unsigned core_stride = static_cast<unsigned>(state.range(0));
    const unsigned speed_stride =
        static_cast<unsigned>(state.range(1));
    FitSetup s = makeSetup(core_stride, speed_stride);
    estimators::LeoEstimator est;
    for (auto _ : state) {
        auto fit =
            est.fitMetric(s.prior, s.obs_idx, s.obs_vals);
        benchmark::DoNotOptimize(fit.prediction);
    }
    state.counters["configs"] =
        static_cast<double>(s.space.size());
}

void
BM_HullWalk(benchmark::State &state)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::fullFactorial(machine);
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), machine);
    auto gt = workloads::computeGroundTruth(app, space);
    optimizer::PerformanceConstraint c{
        0.5 * gt.performance.max() * 100.0, 100.0};
    for (auto _ : state) {
        auto plan = optimizer::planMinimalEnergy(
            gt.performance, gt.power,
            machine.spec().idleSystemPowerW, c);
        benchmark::DoNotOptimize(plan.predictedEnergy);
    }
}

} // namespace

// n = 128, 256, 512, 1024 configurations.
BENCHMARK(BM_LeoFit)
    ->Args({4, 2})
    ->Args({2, 2})
    ->Args({1, 2})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_HullWalk)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
