/**
 * @file
 * Section 6.7: the cost of running LEO itself.
 *
 * The paper measures 0.8 s average execution time per metric on the
 * 2012-era testbed. This google-benchmark binary times one EM fit
 * (per metric) as a function of the configuration-space size, plus
 * the downstream hull walk, which is negligible by comparison.
 *
 * Three fit variants are timed so the perf trajectory of the hot
 * loop stays visible:
 *
 *  - BM_LeoFitReference: the allocating reference path (the
 *    executable specification the workspace path is tested against).
 *  - BM_LeoFit: the default allocation-free workspace path, cold.
 *  - BM_LeoWarmRound: one active-sampling-style round — a warm
 *    refit from the previous round's fit with a persistent
 *    workspace, after four new observations arrive.
 *
 * Every fit row also reports per-EM-iteration time (ms_per_iter), and
 * the binary always writes machine-readable results to
 * BENCH_leo.json (google-benchmark JSON) unless --benchmark_out is
 * given explicitly; tools/bench_diff.py compares two such files.
 *
 * Timing goes through the leo::obs registry (a `bench.fit.ms`
 * histogram and a `bench.fit.iters` counter, read back as snapshot
 * deltas) rather than hand-rolled chrono, so the bench exercises the
 * same instruments the pipeline exports. Extra flags on top of the
 * google-benchmark set:
 *
 *   --trace=<file>    enable tracing and write a Chrome trace_event
 *                     JSON (load in Perfetto or chrome://tracing)
 *   --metrics=<file>  write the final metrics snapshot as JSON
 *
 * Under LEO_OBS=off the registry is a null sink; the bench then falls
 * back to plain steady_clock so its JSON keys stay populated (that
 * mode exists to measure the bare pipeline for the overhead gate).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/obs.hh"

#include "estimators/leo.hh"
#include "linalg/workspace.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "runtime/incremental.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

struct FitSetup
{
    platform::Machine machine;
    platform::ConfigSpace space;
    std::vector<linalg::Vector> prior;
    std::vector<std::size_t> obs_idx;
    linalg::Vector obs_vals;
};

/** Build a fit problem on a space with the given speed stride. */
FitSetup
makeSetup(unsigned core_stride, unsigned speed_stride)
{
    FitSetup s{platform::Machine{},
               platform::ConfigSpace::reducedFactorial(
                   platform::Machine{}, core_stride, speed_stride),
               {},
               {},
               {}};
    stats::Rng rng(7);
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), s.machine, s.space, monitor,
        meter, rng);
    auto loo = store.without("kmeans");
    s.prior = estimators::priorVectors(
        loo, estimators::Metric::Performance);

    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), s.machine);
    telemetry::Profiler prof(monitor, meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, s.space, pol, 20, rng);
    s.obs_idx = obs.indices;
    s.obs_vals = obs.performance;
    return s;
}

/** Time one fit call and fold per-EM-iteration cost into counters;
 *  `ms_key` selects the histogram the timings flow through (the fit
 *  variants each own a key so bench_diff can track them separately). */
template <typename Fit>
void
runTimedFits(benchmark::State &state, std::size_t configs, Fit &&fit,
             const char *ms_key = obs::names::kBenchFitMs)
{
    obs::Registry &reg = obs::Registry::global();
    const obs::Histogram fit_ms =
        reg.histogram(ms_key, obs::defaultTimeBucketsMs());
    const obs::Counter fit_iters = reg.counter(obs::names::kBenchFitIters);

    // Registry deltas around the timed loop; when the registry is the
    // null sink (LEO_OBS=off — the bare-pipeline overhead baseline)
    // fall back to plain chrono so the JSON keys stay populated.
    const bool via_obs = fit_ms.live();
    const obs::Snapshot before = reg.snapshot();
    double chrono_ms = 0.0;
    std::size_t chrono_iters = 0;
    for (auto _ : state) {
        if (via_obs) {
            estimators::LeoFit f = [&]() {
                obs::ScopedMs timer(fit_ms);
                return fit();
            }();
            benchmark::DoNotOptimize(f.prediction);
            fit_iters.add(f.iterations);
        } else {
            const auto t0 = std::chrono::steady_clock::now();
            estimators::LeoFit f = fit();
            const auto t1 = std::chrono::steady_clock::now();
            benchmark::DoNotOptimize(f.prediction);
            chrono_ms += std::chrono::duration<double, std::milli>(
                             t1 - t0).count();
            chrono_iters += f.iterations;
        }
    }
    const obs::Snapshot after = reg.snapshot();

    double total_ms = chrono_ms;
    std::size_t total_iters = chrono_iters;
    if (via_obs) {
        const obs::HistogramSnapshot *h0 = before.histogram(ms_key);
        const obs::HistogramSnapshot *h1 = after.histogram(ms_key);
        total_ms = (h1 ? h1->sum : 0.0) - (h0 ? h0->sum : 0.0);
        total_iters = static_cast<std::size_t>(
            after.counterOr(obs::names::kBenchFitIters) -
            before.counterOr(obs::names::kBenchFitIters));
    }

    state.counters["configs"] = static_cast<double>(configs);
    state.counters["em_iters"] = static_cast<double>(total_iters) /
                                 static_cast<double>(state.iterations());
    if (total_iters > 0)
        state.counters["ms_per_iter"] =
            total_ms / static_cast<double>(total_iters);
}

/** Cold fit on the default allocation-free workspace path. */
void
BM_LeoFit(benchmark::State &state)
{
    // Space size shrinks with the stride arguments.
    const unsigned core_stride = static_cast<unsigned>(state.range(0));
    const unsigned speed_stride =
        static_cast<unsigned>(state.range(1));
    const FitSetup s = makeSetup(core_stride, speed_stride);
    estimators::LeoEstimator est;
    runTimedFits(state, s.space.size(), [&]() {
        return est.fitMetric(s.prior, s.obs_idx, s.obs_vals);
    });
}

/** Cold fit on the opt-in allocating reference path (the seed
 *  implementation; the speedup baseline for bench_diff). */
void
BM_LeoFitReference(benchmark::State &state)
{
    const unsigned core_stride = static_cast<unsigned>(state.range(0));
    const unsigned speed_stride =
        static_cast<unsigned>(state.range(1));
    const FitSetup s = makeSetup(core_stride, speed_stride);
    estimators::LeoOptions opts;
    opts.referencePath = true;
    estimators::LeoEstimator est(opts);
    runTimedFits(state, s.space.size(), [&]() {
        return est.fitMetric(s.prior, s.obs_idx, s.obs_vals);
    });
}

/** Cold fit on the low-rank (Woodbury) covariance representation;
 *  timings flow through the `lowrank` histogram key. */
void
BM_LeoFitLowRank(benchmark::State &state)
{
    const unsigned core_stride = static_cast<unsigned>(state.range(0));
    const unsigned speed_stride =
        static_cast<unsigned>(state.range(1));
    const FitSetup s = makeSetup(core_stride, speed_stride);
    estimators::LeoOptions opts;
    opts.representation = estimators::CovarianceRep::LowRank;
    estimators::LeoEstimator est(opts);
    runTimedFits(
        state, s.space.size(),
        [&]() {
            return est.fitMetric(s.prior, s.obs_idx, s.obs_vals);
        },
        obs::names::kBenchLowRankMs);
}

/**
 * One warm active-sampling round: the previous round fitted 16
 * observations; 4 new ones arrive and the model is refitted from the
 * previous theta with a persistent workspace (exactly what
 * VarianceGuidedSampler and the runtime controller do per round).
 */
void
BM_LeoWarmRound(benchmark::State &state)
{
    const unsigned core_stride = static_cast<unsigned>(state.range(0));
    const unsigned speed_stride =
        static_cast<unsigned>(state.range(1));
    const FitSetup s = makeSetup(core_stride, speed_stride);
    // Auto resolves to the low-rank representation at these sizes
    // (4 q << n), exactly as the production controller would run.
    estimators::LeoOptions opts;
    opts.representation = estimators::CovarianceRep::Auto;
    estimators::LeoEstimator est(opts);
    linalg::Workspace ws;
    const std::vector<std::size_t> prev_idx(s.obs_idx.begin(),
                                            s.obs_idx.end() - 4);
    linalg::Vector prev_vals(s.obs_vals.size() - 4);
    for (std::size_t i = 0; i < prev_vals.size(); ++i)
        prev_vals[i] = s.obs_vals[i];
    const estimators::LeoFit prev = est.fitMetric(
        s.prior, prev_idx, prev_vals, &ws, nullptr);
    runTimedFits(state, s.space.size(), [&]() {
        return est.fitMetric(s.prior, s.obs_idx, s.obs_vals, &ws,
                             &prev);
    });
}

/**
 * One per-window incremental refit at n = 1024: fold a fresh sample
 * into the frozen-theta conditioner (rank-1 Cholesky update, plus a
 * downdate once the window slides) and re-predict all n
 * configurations. This is the controller's per-window cost between
 * full fits; timings flow through the `incremental` histogram key.
 */
void
BM_LeoIncrementalRefit(benchmark::State &state)
{
    const FitSetup s = makeSetup(1, 1);
    estimators::LeoOptions opts;
    opts.representation = estimators::CovarianceRep::LowRank;
    estimators::LeoEstimator est(opts);
    const estimators::LeoFit fit =
        est.fitMetric(s.prior, s.obs_idx, s.obs_vals);

    runtime::IncrementalRefit refit;
    if (!refit.reset(fit, 32, runtime::RefitMode::Incremental)) {
        state.SkipWithError("refit reset rejected the fit");
        return;
    }
    linalg::Vector pred(s.space.size());

    obs::Registry &reg = obs::Registry::global();
    const obs::Histogram ms = reg.histogram(
        obs::names::kBenchIncrementalMs, obs::defaultTimeBucketsMs());
    const bool via_obs = ms.live();
    std::size_t t = 0;
    for (auto _ : state) {
        const std::size_t idx = s.obs_idx[t % s.obs_idx.size()];
        const double val =
            s.obs_vals[t % s.obs_idx.size()] * (1.0 + 0.01 * (t % 7));
        ++t;
        if (via_obs) {
            obs::ScopedMs timer(ms);
            refit.addSample(idx, val);
            refit.predictInto(pred);
        } else {
            refit.addSample(idx, val);
            refit.predictInto(pred);
        }
        benchmark::DoNotOptimize(pred);
    }
    state.counters["configs"] = static_cast<double>(s.space.size());
    state.counters["window"] = static_cast<double>(refit.size());
    state.counters["rebuilds"] = static_cast<double>(refit.rebuilds());
}

/**
 * Headroom probe: a synthetic n = 16384 problem (no machine model —
 * config spaces that large do not exist on the testbed) shows the
 * low-rank path's per-iteration cost scaling with the number of
 * applications, not n.
 */
void
BM_LeoLowRankHeadroom(benchmark::State &state)
{
    const std::size_t n = 16384;
    const std::size_t m = 25;
    const std::size_t s_obs = 20;
    stats::Rng rng(99);
    std::vector<linalg::Vector> prior(m, linalg::Vector(n));
    for (std::size_t i = 0; i < m; ++i) {
        const double f1 = rng.uniform(1.0, 6.0);
        const double f2 = rng.uniform(6.0, 20.0);
        const double lift = rng.uniform(20.0, 200.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double x =
                static_cast<double>(j) / static_cast<double>(n);
            prior[i][j] =
                lift * (2.0 + std::sin(f1 * x) + 0.3 * std::cos(f2 * x));
        }
    }
    std::vector<std::size_t> idx =
        rng.sampleWithoutReplacement(n, s_obs);
    linalg::Vector vals(s_obs);
    for (std::size_t i = 0; i < s_obs; ++i)
        vals[i] = 0.4 * prior[0][idx[i]] *
                  (1.0 + 0.03 * rng.gaussian());

    estimators::LeoOptions opts;
    opts.representation = estimators::CovarianceRep::LowRank;
    estimators::LeoEstimator est(opts);
    runTimedFits(
        state, n,
        [&]() { return est.fitMetric(prior, idx, vals); },
        obs::names::kBenchLowRankMs);
}

void
BM_HullWalk(benchmark::State &state)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::fullFactorial(machine);
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), machine);
    auto gt = workloads::computeGroundTruth(app, space);
    optimizer::PerformanceConstraint c{
        0.5 * gt.performance.max() * 100.0, 100.0};
    for (auto _ : state) {
        auto plan = optimizer::planMinimalEnergy(
            gt.performance, gt.power,
            machine.spec().idleSystemPowerW, c);
        benchmark::DoNotOptimize(plan.predictedEnergy);
    }
}

} // namespace

// n = 128, 256, 512, 1024 configurations.
BENCHMARK(BM_LeoFit)
    ->Args({4, 2})
    ->Args({2, 2})
    ->Args({1, 2})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The reference baseline only at the two largest sizes (it is the
// slow path; the small sizes add runtime without information).
BENCHMARK(BM_LeoFitReference)
    ->Args({1, 2})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The low-rank representation at the two largest spaces, plus the
// synthetic n = 16384 headroom point (configs counter distinguishes
// the rows in BENCH_leo.json).
BENCHMARK(BM_LeoFitLowRank)
    ->Args({1, 2})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_LeoWarmRound)
    ->Args({1, 2})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_LeoIncrementalRefit)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(64);

BENCHMARK(BM_LeoLowRankHeadroom)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_HullWalk)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    // Peel off the obs flags before google-benchmark sees them.
    std::string trace_path;
    std::string metrics_path;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string a(argv[i]);
        if (a.rfind("--trace=", 0) == 0)
            trace_path = a.substr(8);
        else if (a == "--trace" && i + 1 < argc)
            trace_path = argv[++i];
        else if (a.rfind("--metrics=", 0) == 0)
            metrics_path = a.substr(10);
        else if (a == "--metrics" && i + 1 < argc)
            metrics_path = argv[++i];
        else
            args.push_back(argv[i]);
    }
    if (!trace_path.empty())
        obs::Tracer::global().enable(1u << 16);

    // Always emit machine-readable results: default the JSON output
    // to BENCH_leo.json in the working directory unless the caller
    // passed --benchmark_out themselves.
    bool has_out = false;
    for (const char *a : args)
        has_out |= std::string(a).rfind("--benchmark_out", 0) == 0;
    std::string out = "--benchmark_out=BENCH_leo.json";
    std::string fmt = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out.data());
        args.push_back(fmt.data());
    }
    int ac = static_cast<int>(args.size());
    benchmark::Initialize(&ac, args.data());
    if (benchmark::ReportUnrecognizedArguments(ac, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    if (!trace_path.empty()) {
        obs::Tracer &tracer = obs::Tracer::global();
        tracer.disable();
        if (!tracer.writeChromeTrace(trace_path)) {
            std::fprintf(stderr, "failed to write trace to %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "trace: %zu spans (%llu dropped) -> %s\n",
                     tracer.recorded(),
                     static_cast<unsigned long long>(tracer.dropped()),
                     trace_path.c_str());
    }
    if (!metrics_path.empty()) {
        std::FILE *f = std::fopen(metrics_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "failed to write metrics to %s\n",
                         metrics_path.c_str());
            return 1;
        }
        const std::string json = obs::snapshotJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    }
    return 0;
}
